//! Per-(layer, τ) compiled-stream memoization: the τ-decomposable half of
//! design evaluation, computed once per `(conv ordinal, τ)` pair and shared
//! by every design that agrees on that layer.
//!
//! A design's skip decision at conv ordinal `k` depends only on that
//! layer's significance scores and its own τ — never on the other layers'
//! choices. The naive DSE loop nevertheless recompiled every layer's
//! retained-product stream (and re-materialized a full boolean
//! `SkipMaskSet` for cost accounting) once **per design**. [`StreamMemo`]
//! memoizes, per `(k, τ)`:
//!
//! * the compiled weight-pair stream ([`quantize::CompiledConv`]) the
//!   batched kernels dispatch on (`None` when the threshold skips nothing —
//!   dense-stream dispatch, exactly like
//!   [`SignificanceMap::compiled_masks_for_tau`]);
//! * the per-channel retained-product tallies (`kept`, and `kept_nonzero`
//!   for `drop_zero_weights` cost models) that drive the analytic
//!   cycle/flash estimators, so no boolean mask is ever built on the DSE
//!   hot path.
//!
//! Entries are `Arc`-shared and the memo is `Sync`, so rayon workers
//! evaluating different designs (or different τ-trie subtrees) hand out
//! the same compiled stream instead of cloning it. Lookups key on the τ
//! **bit pattern**, so distinct-but-equal grid values hit the same entry
//! while a `-0.0`/`0.0` mismatch merely costs a duplicate entry, never
//! correctness.

use crate::score::{SignificanceMap, TauAssignment};
use quantize::{CompiledConv, ExecPlan, PlanError, QuantModel};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One conv layer's compiled stream + cost tallies at one τ choice.
#[derive(Debug)]
pub struct LayerStream {
    /// The τ this entry was built at (`None` = layer left exact).
    pub tau: Option<f64>,
    /// Compiled retained-product pair stream; `None` when nothing is
    /// skipped (exact layers and thresholds below every score) — the
    /// kernels then dispatch the model's dense stream.
    pub compiled: Option<CompiledConv>,
    /// Per-channel mask-retained product counts, zero weights included
    /// (the boolean masks' accounting, without the boolean masks).
    pub kept: Vec<u32>,
    /// Per-channel retained products with nonzero weight (the
    /// `drop_zero_weights` cost-model variant).
    pub kept_nonzero: Vec<u32>,
    /// Products skipped over all channels (0 for exact layers).
    pub skipped: u64,
}

impl LayerStream {
    /// Total mask-retained products over all channels.
    pub fn retained_products(&self) -> u64 {
        self.kept.iter().map(|&k| k as u64).sum()
    }

    /// Approximate heap bytes (memo-size reporting).
    pub fn resident_bytes(&self) -> u64 {
        4 * (self.kept.len() + self.kept_nonzero.len()) as u64
            + self
                .compiled
                .as_ref()
                .map_or(0, CompiledConv::resident_bytes)
    }

    /// Statically verify this stream entry against conv ordinal `ordinal`
    /// of `plan`: the compiled delta stream satisfies the full stream
    /// contract ([`ExecPlan::verify_stream`]), the per-channel tallies
    /// agree with the compiled payload (`kept` = the stream's retained
    /// counts, `kept_nonzero` = its nonzero weight halves), and the
    /// `skipped` aggregate balances `out_c · patch − Σ kept`. The tallies
    /// drive the analytic cost estimators while the stream drives the
    /// kernels — a divergence means the DSE is pricing a different design
    /// than it executes.
    pub fn verify_consistent(&self, plan: &ExecPlan, ordinal: usize) -> Result<(), PlanError> {
        let stream_err = |detail: String| PlanError::Stream { ordinal, detail };
        if ordinal >= plan.n_convs() {
            return Err(stream_err(format!(
                "layer stream targets conv ordinal {ordinal} of a {}-conv plan",
                plan.n_convs()
            )));
        }
        let seg = plan.conv_segment(ordinal);
        let out_c = seg.geom.out_c;
        let patch = seg.geom.patch_len();
        if self.kept.len() != out_c || self.kept_nonzero.len() != out_c {
            return Err(stream_err(format!(
                "tally arity {} / {} vs out_c {}",
                self.kept.len(),
                self.kept_nonzero.len(),
                out_c
            )));
        }
        for o in 0..out_c {
            if self.kept_nonzero[o] > self.kept[o] || self.kept[o] as usize > patch {
                return Err(stream_err(format!(
                    "channel {o} tallies kept_nonzero {} / kept {} over patch {patch}",
                    self.kept_nonzero[o], self.kept[o]
                )));
            }
        }
        let kept_total: u64 = self.kept.iter().map(|&k| k as u64).sum();
        if self.skipped != (out_c * patch) as u64 - kept_total {
            return Err(stream_err(format!(
                "skipped {} does not balance {} total − {} kept",
                self.skipped,
                out_c * patch,
                kept_total
            )));
        }
        match &self.compiled {
            Some(cc) => {
                plan.verify_stream(ordinal, cc)?;
                if cc.retained != self.kept {
                    return Err(stream_err(
                        "kept tallies diverge from the compiled stream's retained counts".into(),
                    ));
                }
                // The masked zero-halves must balance: every retained
                // nonzero product is exactly one nonzero weight half in
                // the stream payload.
                for o in 0..out_c {
                    let (s, e) = (cc.row_offsets[o] as usize, cc.row_offsets[o + 1] as usize);
                    let nonzero = cc.w[2 * s..2 * e].iter().filter(|&&h| h != 0).count();
                    if nonzero != self.kept_nonzero[o] as usize {
                        return Err(stream_err(format!(
                            "channel {o} streams {nonzero} nonzero halves but tallies {} \
                             kept_nonzero",
                            self.kept_nonzero[o]
                        )));
                    }
                }
            }
            // Dense dispatch: nothing skipped, every product retained.
            None => {
                if self.skipped != 0 || self.kept.iter().any(|&k| k as usize != patch) {
                    return Err(stream_err(
                        "dense-dispatch entry tallies skipped products".into(),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Thread-safe per-(layer, τ) [`LayerStream`] memo over one model's
/// significance map. Borrows the model and map, so it lives alongside the
/// evaluation cache for the duration of one DSE run.
pub struct StreamMemo<'a> {
    model: &'a QuantModel,
    sig: &'a SignificanceMap,
    /// One τ→stream table per conv ordinal, keyed by τ bit pattern
    /// (`None` = exact layer).
    layers: Vec<Mutex<HashMap<Option<u64>, Arc<LayerStream>>>>,
}

impl<'a> StreamMemo<'a> {
    /// An empty memo for `model`'s conv layers.
    pub fn new(model: &'a QuantModel, sig: &'a SignificanceMap) -> Self {
        let n = sig.scores.len();
        assert_eq!(
            n,
            model.conv_indices().len(),
            "significance map arity mismatch"
        );
        Self {
            model,
            sig,
            layers: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Number of conv layers the memo covers.
    pub fn n_convs(&self) -> usize {
        self.layers.len()
    }

    /// The stream + tallies of conv ordinal `k` at τ `tau`, computed on
    /// first request and shared afterwards.
    pub fn layer(&self, k: usize, tau: Option<f64>) -> Arc<LayerStream> {
        let key = tau.map(f64::to_bits);
        if let Some(hit) = self.layers[k].lock().unwrap().get(&key) {
            return Arc::clone(hit);
        }
        // Build outside the lock (a racing duplicate build is benign and
        // deterministic; first insert wins).
        let built = Arc::new(build_layer_stream(self.model, self.sig, k, tau));
        Arc::clone(self.layers[k].lock().unwrap().entry(key).or_insert(built))
    }

    /// All layer streams of one design, in conv-ordinal order (global
    /// assignments broadcast like [`TauAssignment::resolve`]).
    pub fn design(&self, taus: &TauAssignment) -> Vec<Arc<LayerStream>> {
        taus.resolve(self.layers.len())
            .into_iter()
            .enumerate()
            .map(|(k, t)| self.layer(k, t))
            .collect()
    }

    /// Memoized (layer, τ) entries so far.
    pub fn entries(&self) -> usize {
        self.layers.iter().map(|m| m.lock().unwrap().len()).sum()
    }

    /// Approximate heap bytes of all memoized streams (reporting).
    pub fn resident_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|m| {
                m.lock()
                    .unwrap()
                    .values()
                    .map(|s| s.resident_bytes())
                    .sum::<u64>()
            })
            .sum()
    }
}

/// Build one layer's stream + tallies: skip product `i` of channel `o` iff
/// `S_i ≤ τ` — the same predicate as [`SignificanceMap::masks_for_tau`] /
/// [`SignificanceMap::compiled_masks_for_tau`], whose accounting and
/// dispatch this must (and is unit-tested to) reproduce exactly.
fn build_layer_stream(
    model: &QuantModel,
    sig: &SignificanceMap,
    k: usize,
    tau: Option<f64>,
) -> LayerStream {
    let conv = model.conv(k);
    let patch = conv.patch_len();
    let out_c = conv.geom.out_c;
    let nonzero_row = |o: usize, retain: &dyn Fn(usize) -> bool| -> u32 {
        let w = &conv.weights[o * patch..(o + 1) * patch];
        (0..patch).filter(|&i| retain(i) && w[i] != 0).count() as u32
    };
    match tau {
        None => LayerStream {
            tau,
            compiled: None,
            kept: vec![patch as u32; out_c],
            kept_nonzero: (0..out_c).map(|o| nonzero_row(o, &|_| true)).collect(),
            skipped: 0,
        },
        Some(t) => {
            let scores = &sig.scores[k];
            debug_assert_eq!(scores.len(), out_c * patch);
            let cc = CompiledConv::build(conv, |o, i| scores[o * patch + i] <= t);
            let kept = cc.retained.clone();
            let kept_nonzero = (0..out_c)
                .map(|o| nonzero_row(o, &|i| scores[o * patch + i] > t))
                .collect();
            let skipped = (out_c * patch) as u64 - cc.retained_products();
            LayerStream {
                tau,
                compiled: (!cc.is_dense(patch)).then_some(cc),
                kept,
                kept_nonzero,
                skipped,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_mean_inputs;
    use cifar10sim::DatasetConfig;
    use quantize::{calibrate_ranges, quantize_model};

    fn setup() -> (QuantModel, SignificanceMap) {
        let data = cifar10sim::generate(DatasetConfig::tiny(311));
        let m = tinynn::zoo::mini_cifar(31);
        let ranges = calibrate_ranges(&m, &data.train.take(8));
        let q = quantize_model(&m, &ranges);
        let means = capture_mean_inputs(&q, &data.train.take(8));
        let sig = SignificanceMap::compute(&q, &means);
        (q, sig)
    }

    #[test]
    fn memoized_streams_equal_compiled_masks() {
        let (q, sig) = setup();
        let memo = StreamMemo::new(&q, &sig);
        for tau in [0.0, 0.004, 0.02, 0.5] {
            let taus = TauAssignment::global(tau);
            let want = sig.compiled_masks_for_tau(&q, &taus);
            let streams = memo.design(&taus);
            assert_eq!(streams.len(), want.per_conv.len());
            for (k, (s, w)) in streams.iter().zip(&want.per_conv).enumerate() {
                assert_eq!(s.compiled.as_ref(), w.as_ref(), "tau {tau} layer {k}");
            }
        }
    }

    #[test]
    fn tallies_match_boolean_masks() {
        let (q, sig) = setup();
        let memo = StreamMemo::new(&q, &sig);
        let n = q.conv_indices().len();
        let mut per_layer = vec![None; n];
        per_layer[0] = Some(0.02);
        if n > 1 {
            per_layer[1] = Some(0.0);
        }
        for taus in [
            TauAssignment::global(0.015),
            TauAssignment::per_layer(per_layer),
        ] {
            let masks = sig.masks_for_tau(&q, &taus);
            let streams = memo.design(&taus);
            #[allow(clippy::needless_range_loop)]
            for k in 0..n {
                let conv = q.conv(k);
                let patch = conv.patch_len();
                let s = &streams[k];
                for o in 0..conv.geom.out_c {
                    let w = &conv.weights[o * patch..(o + 1) * patch];
                    let (kept, kept_nz) = match &masks.per_conv[k] {
                        Some(m) => {
                            let row = &m[o * patch..(o + 1) * patch];
                            (
                                row.iter().filter(|&&sk| !sk).count(),
                                row.iter()
                                    .zip(w)
                                    .filter(|(&sk, &wv)| !sk && wv != 0)
                                    .count(),
                            )
                        }
                        None => (patch, w.iter().filter(|&&wv| wv != 0).count()),
                    };
                    assert_eq!(s.kept[o] as usize, kept, "layer {k} ch {o}");
                    assert_eq!(s.kept_nonzero[o] as usize, kept_nz, "layer {k} ch {o}");
                }
                let want_skipped = masks.per_conv[k]
                    .as_ref()
                    .map_or(0, |m| m.iter().filter(|&&sk| sk).count() as u64);
                assert_eq!(s.skipped, want_skipped, "layer {k}");
            }
        }
    }

    #[test]
    fn repeated_lookups_share_one_arc() {
        let (q, sig) = setup();
        let memo = StreamMemo::new(&q, &sig);
        let a = memo.layer(0, Some(0.01));
        let b = memo.layer(0, Some(0.01));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(memo.entries(), 1);
        let _ = memo.layer(0, None);
        let _ = memo.layer(0, Some(0.02));
        assert_eq!(memo.entries(), 3);
        assert!(memo.resident_bytes() > 0);
    }

    #[test]
    fn design_broadcasts_global_assignments() {
        let (q, sig) = setup();
        let memo = StreamMemo::new(&q, &sig);
        let streams = memo.design(&TauAssignment::global(0.01));
        assert_eq!(streams.len(), q.conv_indices().len());
        // The same (layer, τ) handed to a per-layer assignment is shared.
        let per_layer = memo.design(&TauAssignment::per_layer(vec![
            Some(0.01);
            q.conv_indices().len()
        ]));
        for (a, b) in streams.iter().zip(&per_layer) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn memoized_streams_verify_against_the_plan() {
        let (q, sig) = setup();
        let plan = ExecPlan::lower(&q);
        let memo = StreamMemo::new(&q, &sig);
        for tau in [0.0, 0.004, 0.02, 0.5] {
            let streams = memo.design(&TauAssignment::global(tau));
            for (k, s) in streams.iter().enumerate() {
                s.verify_consistent(&plan, k)
                    .unwrap_or_else(|e| panic!("tau {tau} layer {k}: {e}"));
            }
        }
        // Exact layers (dense dispatch) verify too.
        for k in 0..memo.n_convs() {
            memo.layer(k, None).verify_consistent(&plan, k).unwrap();
        }
    }

    #[test]
    fn corrupted_tallies_fire_stream_errors() {
        let (q, sig) = setup();
        let plan = ExecPlan::lower(&q);
        let memo = StreamMemo::new(&q, &sig);
        let s = memo.layer(0, Some(0.02));
        assert!(s.compiled.is_some(), "pick a tau that actually skips");
        let is_stream = |r: Result<(), PlanError>| {
            assert!(matches!(r, Err(PlanError::Stream { ordinal: 0, .. })));
        };
        // kept diverging from the compiled retained counts.
        let mut bad = LayerStream {
            tau: s.tau,
            compiled: s.compiled.clone(),
            kept: s.kept.clone(),
            kept_nonzero: s.kept_nonzero.clone(),
            skipped: s.skipped,
        };
        bad.kept[0] += 1;
        bad.skipped -= 1; // keep the aggregate balanced so the deep check fires
        is_stream(bad.verify_consistent(&plan, 0));
        // skipped failing to balance the kept total.
        let mut bad = LayerStream {
            tau: s.tau,
            compiled: s.compiled.clone(),
            kept: s.kept.clone(),
            kept_nonzero: s.kept_nonzero.clone(),
            skipped: s.skipped + 1,
        };
        is_stream(bad.verify_consistent(&plan, 0));
        bad.skipped = s.skipped;
        // kept_nonzero diverging from the streamed nonzero halves.
        bad.kept_nonzero[0] = bad.kept[0] + 1; // also violates kept_nonzero ≤ kept
        is_stream(bad.verify_consistent(&plan, 0));
        // Ordinal out of plan range.
        assert!(matches!(
            s.verify_consistent(&plan, plan.n_convs()),
            Err(PlanError::Stream { .. })
        ));
    }

    #[test]
    fn none_compiles_to_dense_dispatch_with_full_tallies() {
        let (q, sig) = setup();
        let memo = StreamMemo::new(&q, &sig);
        let s = memo.layer(1, None);
        assert!(s.compiled.is_none());
        assert_eq!(s.skipped, 0);
        let c = q.conv(1);
        assert_eq!(s.retained_products(), (c.geom.out_c * c.patch_len()) as u64);
    }
}
