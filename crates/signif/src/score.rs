//! Significance scores (Eq. 2) and τ → skip-mask materialization.

use crate::capture::MeanInputs;
use quantize::{CompiledConv, CompiledMasks, QuantModel, SkipMaskSet};
use serde::{Deserialize, Serialize};

/// Per-conv-layer, per-(channel, patch-index) significance scores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignificanceMap {
    /// `scores[k][o * patch + i]` = `S_i` of product `i` in channel `o` of
    /// conv ordinal `k`. `f64::INFINITY` marks the zero-denominator
    /// retain-always rule.
    pub scores: Vec<Vec<f64>>,
}

/// A τ threshold choice per conv layer (`None` = layer left exact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TauAssignment {
    /// Per conv ordinal.
    pub per_conv: Vec<Option<f64>>,
}

impl TauAssignment {
    /// The same τ applied to every conv layer.
    pub fn global(tau: f64) -> Self {
        // Arity is resolved against the model at mask-build time.
        Self {
            per_conv: vec![Some(tau)],
        }
    }

    /// Explicit per-layer assignment.
    pub fn per_layer(taus: Vec<Option<f64>>) -> Self {
        Self { per_conv: taus }
    }

    /// Resolve against a model with `n` conv layers: a 1-element global
    /// assignment broadcasts. Public because the DSE's trie traversal and
    /// per-(layer, τ) memoization key on the resolved per-layer form.
    pub fn resolve(&self, n: usize) -> Vec<Option<f64>> {
        if self.per_conv.len() == n {
            self.per_conv.clone()
        } else if self.per_conv.len() == 1 {
            vec![self.per_conv[0]; n]
        } else {
            panic!(
                "tau assignment arity {} does not match {} conv layers",
                self.per_conv.len(),
                n
            );
        }
    }
}

impl SignificanceMap {
    /// Compute Eq. (2) for every conv layer from captured mean inputs.
    pub fn compute(model: &QuantModel, means: &MeanInputs) -> Self {
        let n = model.conv_indices().len();
        assert_eq!(means.len(), n, "mean-inputs arity mismatch");
        let mut scores = Vec::with_capacity(n);
        for (k, mean) in means.iter().enumerate() {
            let conv = model.conv(k);
            let patch = conv.patch_len();
            let out_c = conv.geom.out_c;
            assert_eq!(mean.len(), patch);
            let mut s = vec![0.0f64; out_c * patch];
            for o in 0..out_c {
                let w = &conv.weights[o * patch..(o + 1) * patch];
                // Expected products and their channel sum.
                let mut denom = 0.0f64;
                for i in 0..patch {
                    denom += mean[i] * w[i] as f64;
                }
                let row = &mut s[o * patch..(o + 1) * patch];
                if denom == 0.0 {
                    // Zero-sum channel: retain everything (paper rule).
                    for v in row.iter_mut() {
                        *v = f64::INFINITY;
                    }
                } else {
                    let inv = 1.0 / denom.abs();
                    for i in 0..patch {
                        row[i] = (mean[i] * w[i] as f64).abs() * inv;
                    }
                }
            }
            scores.push(s);
        }
        Self { scores }
    }

    /// Build skip masks: product `i` is skipped iff `S_i ≤ τ_layer`.
    pub fn masks_for_tau(&self, model: &QuantModel, taus: &TauAssignment) -> SkipMaskSet {
        let n = self.scores.len();
        let taus = taus.resolve(n);
        let mut set = SkipMaskSet::none(n);
        for (k, tau) in taus.iter().enumerate() {
            if let Some(tau) = *tau {
                let conv = model.conv(k);
                debug_assert_eq!(self.scores[k].len(), conv.geom.out_c * conv.patch_len());
                set.per_conv[k] = Some(self.scores[k].iter().map(|&s| s <= tau).collect());
            }
        }
        set
    }

    /// Build masks directly in **compiled** form (the DSE hot-path
    /// representation), skipping the intermediate `Vec<bool>`: product `i`
    /// is skipped iff `S_i ≤ τ_layer`, exactly as [`Self::masks_for_tau`].
    ///
    /// Equivalent to `CompiledMasks::compile(model, &self.masks_for_tau(..))`
    /// — a unit test pins the equivalence — but materializes only the
    /// retained-product streams. Layers whose threshold skips nothing
    /// compile to `None` (unmasked-kernel dispatch).
    pub fn compiled_masks_for_tau(
        &self,
        model: &QuantModel,
        taus: &TauAssignment,
    ) -> CompiledMasks {
        let n = self.scores.len();
        let taus = taus.resolve(n);
        let mut set = CompiledMasks::none(n);
        for (k, tau) in taus.iter().enumerate() {
            if let Some(tau) = *tau {
                let conv = model.conv(k);
                let patch = conv.patch_len();
                let scores = &self.scores[k];
                debug_assert_eq!(scores.len(), conv.geom.out_c * patch);
                let cc = CompiledConv::build(conv, |o, i| scores[o * patch + i] <= tau);
                if !cc.is_dense(patch) {
                    set.per_conv[k] = Some(cc);
                }
            }
        }
        set
    }

    /// Channel-granularity skipping — the coarser scheme of prior work the
    /// paper contrasts with ("Unlike other approaches that consider
    /// skipping entire channels or even layers \[7\], our framework can omit
    /// operations at the finest granularity").
    ///
    /// A whole output channel is skipped when the **mean** significance of
    /// its products is ≤ τ; otherwise every product is retained. Used by
    /// the granularity ablation (E6) to show what fine-grained skipping
    /// buys at a matched MAC budget.
    pub fn channel_masks_for_tau(&self, model: &QuantModel, taus: &TauAssignment) -> SkipMaskSet {
        let n = self.scores.len();
        let taus = taus.resolve(n);
        let mut set = SkipMaskSet::none(n);
        for (k, tau) in taus.iter().enumerate() {
            let Some(tau) = *tau else { continue };
            let conv = model.conv(k);
            let patch = conv.patch_len();
            let out_c = conv.geom.out_c;
            let mut mask = vec![false; out_c * patch];
            for o in 0..out_c {
                let row = &self.scores[k][o * patch..(o + 1) * patch];
                // Infinite scores (zero-sum retain rule) force retention.
                if row.iter().any(|s| s.is_infinite()) {
                    continue;
                }
                let mean = row.iter().sum::<f64>() / patch as f64;
                if mean <= tau {
                    mask[o * patch..(o + 1) * patch]
                        .iter_mut()
                        .for_each(|m| *m = true);
                }
            }
            set.per_conv[k] = Some(mask);
        }
        set
    }

    /// Fraction of products skipped at a given assignment (code-size proxy).
    pub fn skip_fraction(&self, model: &QuantModel, taus: &TauAssignment) -> f64 {
        let masks = self.masks_for_tau(model, taus);
        let mut skipped = 0usize;
        let mut total = 0usize;
        for m in masks.per_conv.iter().flatten() {
            skipped += m.iter().filter(|&&s| s).count();
            total += m.len();
        }
        for (k, m) in masks.per_conv.iter().enumerate() {
            if m.is_none() {
                total += self.scores[k].len();
            }
        }
        if total == 0 {
            0.0
        } else {
            skipped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_mean_inputs;
    use cifar10sim::DatasetConfig;
    use quantize::{calibrate_ranges, quantize_model};

    fn setup() -> (QuantModel, SignificanceMap) {
        let data = cifar10sim::generate(DatasetConfig::tiny(111));
        let m = tinynn::zoo::mini_cifar(17);
        let ranges = calibrate_ranges(&m, &data.train.take(8));
        let q = quantize_model(&m, &ranges);
        let means = capture_mean_inputs(&q, &data.train.take(8));
        let sig = SignificanceMap::compute(&q, &means);
        (q, sig)
    }

    #[test]
    fn hand_computed_example() {
        // Channel with E = [2, 1, 0.5], w = [10, -40, 4]:
        // products = [20, -40, 2], sum = -18
        // S = |p / sum| = [1.111.., 2.222.., 0.111..]
        let means = [2.0, 1.0, 0.5];
        let w: Vec<i8> = vec![10, -40, 4];
        let mut denom = 0.0;
        for i in 0..3 {
            denom += means[i] * w[i] as f64;
        }
        let s: Vec<f64> = (0..3)
            .map(|i| (means[i] * w[i] as f64 / denom).abs())
            .collect();
        assert!((s[0] - 20.0 / 18.0).abs() < 1e-12);
        assert!((s[1] - 40.0 / 18.0).abs() < 1e-12);
        assert!((s[2] - 2.0 / 18.0).abs() < 1e-12);
        // τ = 0.2 skips only the third product
        let skip: Vec<bool> = s.iter().map(|&v| v <= 0.2).collect();
        assert_eq!(skip, vec![false, false, true]);
    }

    #[test]
    fn zero_denominator_retains_channel() {
        // Construct scores directly through compute() on a crafted layer is
        // heavy; instead verify the rule through the public invariant: no
        // INFINITY score is ever skipped for any finite tau.
        let (q, sig) = setup();
        let masks = sig.masks_for_tau(&q, &TauAssignment::global(f64::MAX));
        for (k, scores) in sig.scores.iter().enumerate() {
            if let Some(mask) = &masks.per_conv[k] {
                for (s, &skipped) in scores.iter().zip(mask.iter()) {
                    if s.is_infinite() {
                        assert!(!skipped, "infinite-significance product skipped");
                    }
                }
            }
        }
    }

    #[test]
    fn masks_monotonic_in_tau() {
        let (q, sig) = setup();
        let small = sig.masks_for_tau(&q, &TauAssignment::global(0.001));
        let large = sig.masks_for_tau(&q, &TauAssignment::global(0.05));
        let mut strictly_more = false;
        for (a, b) in small.per_conv.iter().zip(&large.per_conv) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            for (x, y) in a.iter().zip(b.iter()) {
                assert!(!*x || *y, "skip set not monotone");
            }
            if b.iter().filter(|&&s| s).count() > a.iter().filter(|&&s| s).count() {
                strictly_more = true;
            }
        }
        assert!(strictly_more, "larger tau should skip more on a real model");
    }

    #[test]
    fn per_layer_assignment_respects_none() {
        let (q, sig) = setup();
        let n = q.conv_indices().len();
        let mut taus = vec![None; n];
        taus[0] = Some(0.05);
        let masks = sig.masks_for_tau(&q, &TauAssignment::per_layer(taus));
        assert!(masks.per_conv[0].is_some());
        for m in &masks.per_conv[1..] {
            assert!(m.is_none());
        }
    }

    #[test]
    fn global_broadcasts() {
        let (q, sig) = setup();
        let masks = sig.masks_for_tau(&q, &TauAssignment::global(0.01));
        assert_eq!(masks.per_conv.len(), q.conv_indices().len());
        assert!(masks.per_conv.iter().all(|m| m.is_some()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_rejected() {
        let (q, sig) = setup();
        sig.masks_for_tau(&q, &TauAssignment::per_layer(vec![Some(0.1), Some(0.1)]));
    }

    #[test]
    fn compiled_masks_equal_compile_of_bool_masks() {
        let (q, sig) = setup();
        for tau in [0.0, 0.005, 0.02, 0.5] {
            let taus = TauAssignment::global(tau);
            let direct = sig.compiled_masks_for_tau(&q, &taus);
            let via_bool = CompiledMasks::compile(&q, &sig.masks_for_tau(&q, &taus));
            assert_eq!(direct, via_bool, "tau {tau}");
        }
    }

    #[test]
    fn compiled_masks_respect_exact_layers() {
        let (q, sig) = setup();
        let n = q.conv_indices().len();
        let mut taus = vec![None; n];
        taus[0] = Some(0.5);
        let compiled = sig.compiled_masks_for_tau(&q, &TauAssignment::per_layer(taus));
        assert!(compiled.per_conv[0].is_some());
        for m in &compiled.per_conv[1..] {
            assert!(m.is_none());
        }
    }

    #[test]
    fn channel_masks_are_all_or_nothing() {
        let (q, sig) = setup();
        let masks = sig.channel_masks_for_tau(&q, &TauAssignment::global(0.05));
        for (k, m) in masks.per_conv.iter().enumerate() {
            let m = m.as_ref().unwrap();
            let patch = q.conv(k).patch_len();
            for row in m.chunks(patch) {
                let skipped = row.iter().filter(|&&s| s).count();
                assert!(
                    skipped == 0 || skipped == patch,
                    "channel partially skipped at layer {k}"
                );
            }
        }
    }

    #[test]
    fn channel_masks_monotone_and_bounded_by_huge_tau() {
        let (q, sig) = setup();
        let a = sig.channel_masks_for_tau(&q, &TauAssignment::global(0.001));
        let b = sig.channel_masks_for_tau(&q, &TauAssignment::global(0.5));
        assert!(a.skipped_macs(&q) <= b.skipped_macs(&q));
    }

    #[test]
    fn skip_fraction_bounds_and_growth() {
        let (q, sig) = setup();
        let f0 = sig.skip_fraction(&q, &TauAssignment::global(0.0));
        let f1 = sig.skip_fraction(&q, &TauAssignment::global(0.02));
        let f2 = sig.skip_fraction(&q, &TauAssignment::global(1e9));
        assert!((0.0..=1.0).contains(&f0));
        assert!(f0 <= f1 && f1 <= f2);
        // every finite-significance product is skipped at huge tau
        assert!(f2 > 0.9);
    }
}
