//! Calibration-set capture of `E[a_i]` per conv layer and patch index.

use cifar10sim::Dataset;
use quantize::QuantModel;
use rayon::prelude::*;

/// Mean centered input per conv ordinal and patch index.
///
/// `means[k][i]` = `E[a_i − zp]` for conv ordinal `k`, averaged over all
/// output positions of the layer and all calibration images.
pub type MeanInputs = Vec<Vec<f64>>;

/// Run the calibration subset through the quantized model and average each
/// conv layer's centered im2col columns per patch index.
pub fn capture_mean_inputs(model: &QuantModel, calib: &Dataset) -> MeanInputs {
    assert!(!calib.is_empty(), "calibration set must be non-empty");
    let conv_indices = model.conv_indices();
    let patch_lens: Vec<usize> = (0..conv_indices.len())
        .map(|k| model.conv(k).patch_len())
        .collect();

    // Per-image partial sums, collected in index order for determinism.
    let partials: Vec<Vec<Vec<f64>>> = (0..calib.len())
        .into_par_iter()
        .map(|img_idx| {
            let mut sums: Vec<Vec<f64>> = patch_lens.iter().map(|&p| vec![0.0f64; p]).collect();
            let q = model.quantize_input(calib.image(img_idx));
            model.forward_inspect(&q, None, &mut |ordinal, conv, centered| {
                let patch = conv.patch_len();
                let positions = conv.geom.out_positions();
                let acc = &mut sums[ordinal];
                for p in 0..positions {
                    let col = &centered[p * patch..(p + 1) * patch];
                    for (a, &v) in acc.iter_mut().zip(col.iter()) {
                        *a += v as f64;
                    }
                }
            });
            sums
        })
        .collect();

    let mut means: MeanInputs = patch_lens.iter().map(|&p| vec![0.0f64; p]).collect();
    for img in &partials {
        for (m, s) in means.iter_mut().zip(img.iter()) {
            for (a, b) in m.iter_mut().zip(s.iter()) {
                *a += b;
            }
        }
    }
    for (k, m) in means.iter_mut().enumerate() {
        let positions = model.conv(k).geom.out_positions() as f64;
        let denom = positions * calib.len() as f64;
        for v in m.iter_mut() {
            *v /= denom;
        }
    }
    means
}

#[cfg(test)]
mod tests {
    use super::*;
    use cifar10sim::DatasetConfig;
    use quantize::{calibrate_ranges, quantize_model};

    fn setup() -> (QuantModel, cifar10sim::SyntheticCifar) {
        let data = cifar10sim::generate(DatasetConfig::tiny(101));
        let m = tinynn::zoo::mini_cifar(13);
        let ranges = calibrate_ranges(&m, &data.train.take(8));
        (quantize_model(&m, &ranges), data)
    }

    #[test]
    fn shapes_match_conv_layers() {
        let (q, data) = setup();
        let means = capture_mean_inputs(&q, &data.train.take(8));
        let convs = q.conv_indices();
        assert_eq!(means.len(), convs.len());
        for (k, m) in means.iter().enumerate() {
            assert_eq!(m.len(), q.conv(k).patch_len());
        }
    }

    #[test]
    fn first_layer_means_are_nonnegative_for_unit_inputs() {
        // Inputs are in [0,1] and zp maps 0.0 -> zp, so centered values are
        // >= 0 for the first conv; padding contributes zeros.
        let (q, data) = setup();
        let means = capture_mean_inputs(&q, &data.train.take(8));
        assert!(means[0].iter().all(|&v| v >= 0.0));
        // and at least some mass
        assert!(means[0].iter().any(|&v| v > 0.1));
    }

    #[test]
    fn deterministic_across_runs() {
        let (q, data) = setup();
        let a = capture_mean_inputs(&q, &data.train.take(12));
        let b = capture_mean_inputs(&q, &data.train.take(12));
        assert_eq!(a, b);
    }

    #[test]
    fn depends_on_calibration_subset() {
        let (q, data) = setup();
        let a = capture_mean_inputs(&q, &data.train.take(4));
        let b = capture_mean_inputs(&q, &data.train.take(16));
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_calibration_rejected() {
        let (q, data) = setup();
        capture_mean_inputs(&q, &data.train.take(0));
    }
}
