//! # signif
//!
//! Significance-aware computation skipping (Section II-C of the paper).
//!
//! Every product `a_i · w_i` inside a convolution's per-channel accumulation
//! (Eq. (1): `Sum_c = b + Σ_i a_i·w_i`) gets an **offline significance
//! score**
//!
//! ```text
//! S_i = | E[a_i] · w_i  /  Σ_j E[a_j] · w_j |          (Eq. 2)
//! ```
//!
//! where `E[a_i]` is the expected value of the input feeding product `i`,
//! estimated from a small calibration subset ("capturing the input values'
//! distribution from a small portion of the dataset"). If a channel's
//! denominator is zero — "the vast minority of the cases" — all its products
//! are considered highly significant and retained.
//!
//! Given a threshold `τ`, products with `S_i ≤ τ` are skipped (omitted from
//! the generated code, Eq. (3)); the DSE sweeps `τ` per layer.
//!
//! Implementation notes:
//!
//! * `E[a_i]` is computed on the *centered quantized* inputs
//!   (`a − zero_point`); the shared scale factors cancel in the ratio, so
//!   the scores equal the real-domain definition.
//! * Capture is rayon-parallel across calibration images with an
//!   index-ordered reduction — thread-count independent.

pub mod capture;
pub mod score;
pub mod stream;

pub use capture::capture_mean_inputs;
pub use score::{SignificanceMap, TauAssignment};
pub use stream::{LayerStream, StreamMemo};

#[cfg(test)]
mod integration_tests {
    use crate::{capture_mean_inputs, SignificanceMap};
    use cifar10sim::DatasetConfig;
    use quantize::{calibrate_ranges, quantize_model};
    use tinynn::{SgdConfig, Trainer};

    #[test]
    fn end_to_end_masks_preserve_accuracy_at_tiny_tau() {
        let data = cifar10sim::generate(DatasetConfig::tiny(91));
        let mut m = tinynn::zoo::mini_cifar(11);
        let mut t = Trainer::new(SgdConfig {
            epochs: 6,
            lr: 0.08,
            ..Default::default()
        });
        t.train(&mut m, &data.train);
        let ranges = calibrate_ranges(&m, &data.train.take(16));
        let q = quantize_model(&m, &ranges);

        let means = capture_mean_inputs(&q, &data.train.take(16));
        let sig = SignificanceMap::compute(&q, &means);

        let base = q.accuracy(&data.test, None);
        // τ = 0: only zero-significance products are skipped; the expected
        // contribution of each is ~0, so accuracy should barely move.
        let masks0 = sig.masks_for_tau(&q, &crate::TauAssignment::global(0.0));
        let acc0 = q.accuracy(&data.test, Some(&masks0));
        assert!(
            (base - acc0).abs() <= 0.08,
            "tau=0 skipping moved accuracy too much: {base} -> {acc0}"
        );

        // an absurd τ skips everything and must crater accuracy measurement
        // machinery without panicking
        let masks_all = sig.masks_for_tau(&q, &crate::TauAssignment::global(1e9));
        let acc_all = q.accuracy(&data.test, Some(&masks_all));
        assert!(acc_all <= base + 1e-6);
    }
}
