//! Compiled skip-mask execution: the DSE hot path without per-product
//! branching.
//!
//! The reference masked kernel ([`SkipMaskSet`]-driven) tests a `bool` per
//! product inside the innermost MAC loop — one load + one branch per
//! product, thousands of times per output position, for every one of the
//! thousands of designs the DSE simulates. Exactly like the paper compiles
//! skip decisions *into the generated code* (Eq. (3): skipped products are
//! simply absent), [`CompiledMasks`] moves all mask interpretation out of
//! the inner loop and into the data layout, once per design: per output
//! channel, the retained products are compacted into a contiguous
//! `(i16 patch index, i8 weight)` stream, and a layer whose mask skips
//! nothing compiles to `None` — unmasked-kernel dispatch.
//!
//! ## Kernel shape
//!
//! The compiled kernels run on **patch-major (transposed) centered
//! columns** ([`tinytensor::im2col::fill_im2col_centered_t`]): row `i`
//! holds patch element `i` of *every* output position, contiguously. Each
//! stream entry then broadcasts one weight against one row, so
//!
//! * the inner loop is a `positions`-long contiguous multiply-accumulate
//!   the compiler auto-vectorizes (this simulator runs the DSE on wide
//!   CPUs; the MCU-side SMLAD-pair shape with offline-packed weight
//!   constants lives in [`tinytensor::simd`] — `pack_weight_pairs` /
//!   `smlad_dot_i16` — and stays the unpacked engine's codegen model);
//! * a skipped product skips its entire row: masked layers get *faster*
//!   with every skipped product instead of paying a branch to avoid work;
//! * accumulation order per output is the ascending patch order of the
//!   reference kernel, and i32 wrapping addition is order-exact anyway, so
//!   results are **bit-exact** with the `Vec<bool>` path.
//!
//! Bit-exactness is enforced by unit tests here and workspace proptests
//! over random models, τ grids and images (`tests/compiled_masks.rs`).

use crate::forward::{argmax_i8, dense_forward, pool_forward, ForwardScratch, SkipMaskSet};
use crate::qmodel::{QConv, QLayer, QuantModel};
use serde::{Deserialize, Serialize};
use tinytensor::im2col::{fill_im2col_centered_t, fill_im2col_centered_t_planar};

/// One conv layer's mask compiled into compact retained-product streams.
///
/// Every channel — dense or masked — carries its zero-dropped retained
/// stream and executes through the same stream kernel; a mask that skips
/// nothing anywhere compiles to `None` at the [`CompiledMasks`] level
/// instead (whole-layer unmasked dispatch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledConv {
    /// Per-channel `[start, end)` spans into `idx`/`w`; length `out_c + 1`.
    pub row_offsets: Vec<u32>,
    /// Patch index of each retained nonzero-weight product of each
    /// channel, ascending within a channel (reference accumulation order).
    pub idx: Vec<i16>,
    /// Weight of each retained product (copied next to its index so the
    /// inner loop never touches the full weight matrix).
    pub w: Vec<i8>,
    /// Retained products per channel, zero weights included (cost
    /// accounting that matches the boolean masks without re-scanning).
    pub retained: Vec<u32>,
}

impl CompiledConv {
    /// Compile one conv layer's boolean mask (`true` = skip).
    pub fn from_mask(conv: &QConv, mask: &[bool]) -> Self {
        let patch = conv.patch_len();
        let out_c = conv.geom.out_c;
        assert_eq!(mask.len(), out_c * patch, "mask length mismatch");
        Self::build(conv, |o, i| mask[o * patch + i])
    }

    /// Compile from any skip predicate over `(channel, patch index)`.
    ///
    /// Every channel — dense or masked — gets a stream holding its retained
    /// products with **zero weights dropped** (they contribute exactly 0,
    /// so dropping them is bit-exact; it is the compile-time analogue of
    /// the unpacked engine's `drop_zero_weights`). `retained` still counts
    /// every mask-retained product, zero-weight or not, so cost accounting
    /// matches the boolean masks.
    pub fn build(conv: &QConv, skip: impl Fn(usize, usize) -> bool) -> Self {
        let patch = conv.patch_len();
        let out_c = conv.geom.out_c;
        assert!(
            patch <= i16::MAX as usize + 1,
            "patch length exceeds i16 index range"
        );
        let mut row_offsets = Vec::with_capacity(out_c + 1);
        let mut idx = Vec::new();
        let mut w = Vec::new();
        let mut retained = Vec::with_capacity(out_c);
        row_offsets.push(0u32);
        for o in 0..out_c {
            let wrow = &conv.weights[o * patch..(o + 1) * patch];
            let mut kept = 0u32;
            for (i, &wv) in wrow.iter().enumerate() {
                if skip(o, i) {
                    continue;
                }
                kept += 1;
                if wv != 0 {
                    idx.push(i as i16);
                    w.push(wv);
                }
            }
            retained.push(kept);
            row_offsets.push(idx.len() as u32);
        }
        Self {
            row_offsets,
            idx,
            w,
            retained,
        }
    }

    /// True when every channel retains all `patch` products (the mask
    /// skipped nothing) — derived from `retained`, no separate state.
    pub fn is_dense(&self, patch: usize) -> bool {
        self.retained.iter().all(|&r| r as usize == patch)
    }

    /// Total retained products over all channels.
    pub fn retained_products(&self) -> u64 {
        self.retained.iter().map(|&r| r as u64).sum()
    }
}

/// A full design's masks in compiled form (`None` = layer left exact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledMasks {
    /// One optional compiled mask per conv ordinal.
    pub per_conv: Vec<Option<CompiledConv>>,
}

impl CompiledMasks {
    /// Compile a boolean [`SkipMaskSet`] against `model`.
    ///
    /// Masks that skip nothing compile to `None` (unmasked-kernel
    /// dispatch), which is semantically identical and strictly faster.
    pub fn compile(model: &QuantModel, masks: &SkipMaskSet) -> Self {
        let per_conv = masks
            .per_conv
            .iter()
            .enumerate()
            .map(|(k, m)| {
                m.as_ref().and_then(|mask| {
                    let conv = model.conv(k);
                    let cc = CompiledConv::from_mask(conv, mask);
                    if cc.is_dense(conv.patch_len()) {
                        None
                    } else {
                        Some(cc)
                    }
                })
            })
            .collect();
        Self { per_conv }
    }

    /// No approximation anywhere.
    pub fn none(n_convs: usize) -> Self {
        Self {
            per_conv: vec![None; n_convs],
        }
    }

    /// Retained conv MACs under these masks, dense (exact) layers
    /// contributing their full product count.
    pub fn retained_conv_macs(&self, model: &QuantModel) -> u64 {
        let mut total = 0u64;
        for (k, cm) in self.per_conv.iter().enumerate() {
            let conv = model.conv(k);
            let products = match cm {
                Some(cc) => cc.retained_products(),
                None => (conv.geom.out_c * conv.patch_len()) as u64,
            };
            total += products * conv.geom.out_positions() as u64;
        }
        total
    }
}

/// Accumulate one broadcast weight against a transposed column row:
/// `acc[p] += row[p] · w` — contiguous, auto-vectorized over positions.
#[inline]
fn axpy_row(acc: &mut [i32], row: &[i16], w: i32) {
    for (a, &v) in acc.iter_mut().zip(row) {
        *a += v as i32 * w;
    }
}

/// Four broadcast weights against four rows in one pass: quarters the
/// accumulator load/store traffic of four [`axpy_row`] calls. i32 wrapping
/// addition is associative, so the regrouping is bit-exact.
#[inline]
#[allow(clippy::too_many_arguments)]
fn axpy_row4(
    acc: &mut [i32],
    r0: &[i16],
    r1: &[i16],
    r2: &[i16],
    r3: &[i16],
    w0: i32,
    w1: i32,
    w2: i32,
    w3: i32,
) {
    let n = acc.len();
    let (r0, r1, r2, r3) = (&r0[..n], &r1[..n], &r2[..n], &r3[..n]);
    for p in 0..n {
        acc[p] += r0[p] as i32 * w0 + r1[p] as i32 * w1 + r2[p] as i32 * w2 + r3[p] as i32 * w3;
    }
}

/// One conv layer's output stage (requantize + zero point + clamp) with the
/// left/right shift direction resolved once per layer and every branch of
/// the gemmlowp pipeline flattened to selects.
///
/// Bit-exact with `clamp_out` / `tinytensor::quant::requantize` for every
/// i32 accumulator: the saturating pre-shift becomes an i64 multiply +
/// clamp, and the `a == b == i32::MIN` saturation case of the doubling
/// high-mul cannot fire because quantized-model multipliers are
/// non-negative (`RequantMultiplier::from_real` range) — asserted at
/// construction. Unit-tested against the reference over random
/// accumulators.
#[derive(Clone, Copy)]
struct OutStage {
    /// `1 << max(shift, 0)` — the saturating left pre-shift as a multiply.
    left_mul: i64,
    /// Fixed-point multiplier (non-negative).
    m: i64,
    /// `max(-shift, 0)` — rounding right-shift exponent.
    right: i32,
    zp: i32,
    lo: i32,
    hi: i32,
}

impl OutStage {
    fn new(c: &QConv) -> Self {
        assert!(c.mult.multiplier >= 0, "negative requant multiplier");
        let (lo, hi) = c.act_bounds();
        Self {
            left_mul: 1i64 << c.mult.shift.max(0),
            m: c.mult.multiplier as i64,
            right: (-c.mult.shift).max(0),
            zp: c.out_qp.zero_point,
            lo,
            hi,
        }
    }

    #[inline(always)]
    fn apply(&self, acc: i32) -> i8 {
        // `value.saturating_mul(1 << left)` without the overflow branches.
        let pre = (acc as i64 * self.left_mul).clamp(i32::MIN as i64, i32::MAX as i64);
        // SaturatingRoundingDoublingHighMul with b >= 0: never saturates.
        let ab = pre * self.m;
        let nudge = if ab >= 0 {
            1i64 << 30
        } else {
            1 - (1i64 << 30)
        };
        let v = ((ab + nudge) / (1i64 << 31)) as i32;
        // RoundingDivideByPOT with a per-layer constant exponent.
        let v = if self.right == 0 {
            v
        } else {
            let mask = (1i64 << self.right) - 1;
            let remainder = i64::from(v) & mask;
            let threshold = (mask >> 1) + i64::from(v < 0);
            (v >> self.right) + i32::from(remainder > threshold)
        };
        // `requantize_to_i8`'s [-128, 127] clamp is subsumed by the fused
        // ReLU bounds (always within i8 range).
        (v + self.zp).clamp(self.lo, self.hi) as i8
    }
}

/// L1 budget for one position block of transposed columns (bytes). Blocks
/// sized so every patch row of a block stays cache-hot across all output
/// channels of the layer.
const COLT_BLOCK_BYTES: usize = 28 * 1024;

/// Conv forward over transposed centered columns with optional compiled
/// masks (`None` = exact layer), writing **planar** output
/// (`output[o * positions + p]`) so every store is contiguous.
///
/// Position-blocked: channels iterate inside a block of positions whose
/// column rows fit L1, so the (out_c − 1) re-reads of each row hit cache
/// instead of streaming the whole column matrix per channel.
fn conv_forward_t(
    c: &QConv,
    cm: Option<&CompiledConv>,
    colt: &[i16],
    acc: &mut [i32],
    output: &mut [i8],
) {
    let patch = c.patch_len();
    let positions = c.geom.out_positions();
    let out_c = c.geom.out_c;
    let stage = OutStage::new(c);
    let block = (COLT_BLOCK_BYTES / (2 * patch)).clamp(64, positions.max(64));

    let mut p0 = 0usize;
    while p0 < positions {
        let b = block.min(positions - p0);
        let acc = &mut acc[..b];
        for o in 0..out_c {
            acc.fill(c.bias[o]);
            let row = |i: usize| &colt[i * positions + p0..i * positions + p0 + b];
            match cm {
                None => {
                    // Exact layer: every patch row, weights straight from
                    // the matrix, four rows per pass.
                    let wrow = &c.weights[o * patch..(o + 1) * patch];
                    let mut i = 0;
                    while i + 4 <= patch {
                        axpy_row4(
                            acc,
                            row(i),
                            row(i + 1),
                            row(i + 2),
                            row(i + 3),
                            wrow[i] as i32,
                            wrow[i + 1] as i32,
                            wrow[i + 2] as i32,
                            wrow[i + 3] as i32,
                        );
                        i += 4;
                    }
                    while i < patch {
                        axpy_row(acc, row(i), wrow[i] as i32);
                        i += 1;
                    }
                }
                Some(cc) => {
                    // Compiled channel (dense or masked): the zero-dropped
                    // retained stream, four entries per pass — no branch,
                    // no mask load.
                    let s = cc.row_offsets[o] as usize;
                    let e = cc.row_offsets[o + 1] as usize;
                    let (ix, ws) = (&cc.idx[s..e], &cc.w[s..e]);
                    let n = ix.len();
                    let mut j = 0;
                    while j + 4 <= n {
                        axpy_row4(
                            acc,
                            row(ix[j] as usize),
                            row(ix[j + 1] as usize),
                            row(ix[j + 2] as usize),
                            row(ix[j + 3] as usize),
                            ws[j] as i32,
                            ws[j + 1] as i32,
                            ws[j + 2] as i32,
                            ws[j + 3] as i32,
                        );
                        j += 4;
                    }
                    while j < n {
                        axpy_row(acc, row(ix[j] as usize), ws[j] as i32);
                        j += 1;
                    }
                }
            }
            // Output stage: requantize + clamp, contiguous planar store.
            let orow = &mut output[o * positions + p0..o * positions + p0 + b];
            for (out, &a) in orow.iter_mut().zip(acc.iter()) {
                *out = stage.apply(a);
            }
        }
        p0 += b;
    }
}

impl QuantModel {
    /// Largest output-position count of any conv layer (accumulator
    /// scratch sizing for the compiled kernels).
    pub fn max_conv_positions(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QLayer::Conv(c) => c.geom.out_positions(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Transposed centered im2col columns of the *first* conv layer for one
    /// quantized input — τ-independent, so DSE callers compute them once
    /// per image and share them across every design (the `dse`-side
    /// evaluation cache).
    ///
    /// Returns `None` when the model does not start with a convolution.
    pub fn conv0_cols_t(&self, qinput: &[i8]) -> Option<Vec<i16>> {
        match self.layers.first() {
            Some(QLayer::Conv(c)) => {
                let mut colt = vec![0i16; c.geom.out_positions() * c.patch_len()];
                fill_centered_t(c, qinput, &mut colt);
                Some(colt)
            }
            _ => None,
        }
    }

    /// Forward pass with compiled masks, reusing caller scratch and an
    /// optional precomputed first-conv transposed column cache.
    ///
    /// Bit-exact with [`QuantModel::forward_quantized`] over the boolean
    /// mask set the compiled masks were built from.
    pub fn forward_compiled_scratch(
        &self,
        qinput: &[i8],
        conv0_colt: Option<&[i16]>,
        masks: Option<&CompiledMasks>,
        s: &mut ForwardScratch,
    ) -> Vec<i8> {
        let (in_a, cur_len) = self.forward_compiled_core(qinput, conv0_colt, masks, s);
        let fin = if in_a {
            &s.act_a[..cur_len]
        } else {
            &s.act_b[..cur_len]
        };
        fin.to_vec()
    }

    /// Forward driver writing into scratch; returns which ping-pong buffer
    /// holds the logits and their length (no allocation).
    fn forward_compiled_core(
        &self,
        qinput: &[i8],
        conv0_colt: Option<&[i16]>,
        masks: Option<&CompiledMasks>,
        s: &mut ForwardScratch,
    ) -> (bool, usize) {
        assert_eq!(
            qinput.len(),
            self.input_shape.item_len(),
            "input length mismatch"
        );
        s.ensure_compiled(self);
        let mut cur_len = qinput.len();
        s.act_a[..cur_len].copy_from_slice(qinput);
        let mut conv_ordinal = 0usize;
        let mut in_a = true;
        // Activations stay planar (channel-major) between conv/pool stages;
        // `planar_dims = (positions, channels)` of the current buffer when
        // planar. The input arrives NHWC, dense layers consume NHWC.
        let mut planar_dims: Option<(usize, usize)> = None;

        for layer in &self.layers {
            let out_len = layer.out_len();
            let (src, dst) = if in_a {
                (&s.act_a[..], &mut s.act_b[..])
            } else {
                (&s.act_b[..], &mut s.act_a[..])
            };
            match layer {
                QLayer::Conv(c) => {
                    let n = c.geom.out_positions() * c.patch_len();
                    let colt: &[i16] = match (conv_ordinal, conv0_colt) {
                        (0, Some(cached)) => {
                            debug_assert_eq!(cached.len(), n, "conv0 column cache mismatch");
                            cached
                        }
                        _ => {
                            if planar_dims.is_some() {
                                fill_centered_t_planar(c, &src[..cur_len], &mut s.colt[..n]);
                            } else {
                                fill_centered_t(c, &src[..cur_len], &mut s.colt[..n]);
                            }
                            &s.colt[..n]
                        }
                    };
                    let cm = masks.and_then(|m| m.per_conv[conv_ordinal].as_ref());
                    conv_forward_t(c, cm, colt, &mut s.acc, &mut dst[..out_len]);
                    planar_dims = Some((c.geom.out_positions(), c.geom.out_c));
                    conv_ordinal += 1;
                }
                QLayer::Pool(p) => {
                    if planar_dims.is_some() {
                        pool_forward_planar(
                            p.in_h,
                            p.in_w,
                            p.c,
                            &src[..cur_len],
                            &mut dst[..out_len],
                        );
                        planar_dims = Some(((p.in_h / 2) * (p.in_w / 2), p.c));
                    } else {
                        pool_forward(p.in_h, p.in_w, p.c, &src[..cur_len], &mut dst[..out_len]);
                    }
                }
                QLayer::Dense(d) => {
                    if let Some((positions, ch)) = planar_dims.take() {
                        planar_to_nhwc(&src[..cur_len], positions, ch, &mut s.nhwc[..cur_len]);
                        dense_forward(d, &s.nhwc[..cur_len], &mut dst[..out_len]);
                    } else {
                        dense_forward(d, &src[..cur_len], &mut dst[..out_len]);
                    }
                }
            }
            cur_len = out_len;
            in_a = !in_a;
        }
        // A model ending on a conv/pool leaves the buffer planar: convert so
        // callers always see NHWC logits.
        if let Some((positions, ch)) = planar_dims {
            let (src, dst) = if in_a {
                (&s.act_a[..cur_len], &mut s.act_b[..])
            } else {
                (&s.act_b[..cur_len], &mut s.act_a[..])
            };
            planar_to_nhwc(src, positions, ch, &mut dst[..cur_len]);
            in_a = !in_a;
        }
        (in_a, cur_len)
    }

    /// Allocation-per-call convenience wrapper over
    /// [`QuantModel::forward_compiled_scratch`].
    pub fn forward_compiled(&self, qinput: &[i8], masks: Option<&CompiledMasks>) -> Vec<i8> {
        let mut scratch = ForwardScratch::for_model(self);
        self.forward_compiled_scratch(qinput, None, masks, &mut scratch)
    }

    /// Predicted class under compiled masks, reusing caller scratch —
    /// allocation-free (argmax runs on the scratch logits in place).
    pub fn predict_compiled_scratch(
        &self,
        qinput: &[i8],
        conv0_colt: Option<&[i16]>,
        masks: Option<&CompiledMasks>,
        s: &mut ForwardScratch,
    ) -> usize {
        let (in_a, cur_len) = self.forward_compiled_core(qinput, conv0_colt, masks, s);
        let fin = if in_a {
            &s.act_a[..cur_len]
        } else {
            &s.act_b[..cur_len]
        };
        argmax_i8(fin)
    }
}

/// Fill `colt` with `c`'s transposed centered columns for an NHWC `input`.
fn fill_centered_t(c: &QConv, input: &[i8], colt: &mut [i16]) {
    let zp = c.in_qp.zero_point;
    // The reference pads the i8 column buffer with `zp` clamped to i8 and
    // centers afterwards; reproduce that exactly.
    let pad_centered = zp.clamp(-128, 127) as i16 - zp as i16;
    fill_im2col_centered_t(input, &c.geom, zp as i16, pad_centered, colt);
}

/// Fill `colt` from a **planar** (channel-major) activation buffer.
fn fill_centered_t_planar(c: &QConv, planar: &[i8], colt: &mut [i16]) {
    let zp = c.in_qp.zero_point;
    let pad_centered = zp.clamp(-128, 127) as i16 - zp as i16;
    fill_im2col_centered_t_planar(planar, &c.geom, zp as i16, pad_centered, colt);
}

/// 2×2/2 max-pool over planar activations — contiguous reads and writes
/// per channel (layout change only: max is order- and layout-invariant, so
/// results equal the NHWC reference pool).
fn pool_forward_planar(in_h: usize, in_w: usize, ch: usize, input: &[i8], output: &mut [i8]) {
    let (oh, ow) = (in_h / 2, in_w / 2);
    let in_plane = in_h * in_w;
    let out_plane = oh * ow;
    for c in 0..ch {
        let src = &input[c * in_plane..(c + 1) * in_plane];
        let dst = &mut output[c * out_plane..(c + 1) * out_plane];
        for oy in 0..oh {
            let r0 = &src[(oy * 2) * in_w..(oy * 2) * in_w + in_w];
            let r1 = &src[(oy * 2 + 1) * in_w..(oy * 2 + 1) * in_w + in_w];
            let drow = &mut dst[oy * ow..(oy + 1) * ow];
            for (ox, d) in drow.iter_mut().enumerate() {
                let x = ox * 2;
                *d = r0[x].max(r0[x + 1]).max(r1[x]).max(r1[x + 1]);
            }
        }
    }
}

/// Interleave a planar activation buffer back into NHWC order.
fn planar_to_nhwc(src: &[i8], positions: usize, ch: usize, dst: &mut [i8]) {
    for c in 0..ch {
        let plane = &src[c * positions..(c + 1) * positions];
        for (p, &v) in plane.iter().enumerate() {
            dst[p * ch + c] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::calibrate_ranges;
    use crate::qmodel::quantize_model;
    use cifar10sim::DatasetConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn quantized_micro(seed: u64) -> (QuantModel, cifar10sim::SyntheticCifar) {
        let data = cifar10sim::generate(DatasetConfig::tiny(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        let m = tinynn::Sequential::new("cm", tinytensor::Shape4::nhwc(1, 32, 32, 3))
            .conv_relu(4, 3, &mut rng)
            .maxpool()
            .conv_relu(6, 3, &mut rng)
            .maxpool()
            .dense(10, true, &mut rng);
        let ranges = calibrate_ranges(&m, &data.train.take(8));
        (quantize_model(&m, &ranges), data)
    }

    fn random_masks(q: &QuantModel, seed: u64, density_mod: u64) -> SkipMaskSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = q.conv_indices().len();
        let mut masks = SkipMaskSet::none(n);
        for k in 0..n {
            let c = q.conv(k);
            let len = c.geom.out_c * c.patch_len();
            masks.per_conv[k] = Some(
                (0..len)
                    .map(|_| rng.gen_range(0u64..density_mod) == 0)
                    .collect(),
            );
        }
        masks
    }

    #[test]
    fn compiled_forward_bit_exact_with_bool_reference() {
        let (q, data) = quantized_micro(77);
        for density in [2u64, 5, 50] {
            let masks = random_masks(&q, 1000 + density, density);
            let compiled = CompiledMasks::compile(&q, &masks);
            for i in 0..8 {
                let qin = q.quantize_input(data.test.image(i));
                let want = q.forward_quantized(&qin, Some(&masks));
                let got = q.forward_compiled(&qin, Some(&compiled));
                assert_eq!(got, want, "density {density}, image {i}");
            }
        }
    }

    #[test]
    fn compiled_exact_path_matches_unmasked_reference() {
        let (q, data) = quantized_micro(82);
        for i in 0..6 {
            let qin = q.quantize_input(data.test.image(i));
            assert_eq!(
                q.forward_compiled(&qin, None),
                q.forward_quantized(&qin, None),
                "{i}"
            );
        }
    }

    #[test]
    fn conv0_cache_is_bit_exact() {
        let (q, data) = quantized_micro(78);
        let masks = random_masks(&q, 5, 3);
        let compiled = CompiledMasks::compile(&q, &masks);
        let mut scratch = ForwardScratch::for_model(&q);
        for i in 0..6 {
            let qin = q.quantize_input(data.test.image(i));
            let colt = q.conv0_cols_t(&qin).expect("model starts with conv");
            let want = q.forward_quantized(&qin, Some(&masks));
            let got = q.forward_compiled_scratch(&qin, Some(&colt), Some(&compiled), &mut scratch);
            assert_eq!(got, want, "image {i}");
        }
    }

    #[test]
    fn all_false_mask_compiles_to_exact_dispatch() {
        let (q, data) = quantized_micro(79);
        let n = q.conv_indices().len();
        let mut masks = SkipMaskSet::none(n);
        let c0 = q.conv(0);
        masks.per_conv[0] = Some(vec![false; c0.geom.out_c * c0.patch_len()]);
        let compiled = CompiledMasks::compile(&q, &masks);
        assert!(compiled.per_conv.iter().all(|m| m.is_none()));
        let qin = q.quantize_input(data.test.image(0));
        assert_eq!(
            q.forward_compiled(&qin, Some(&compiled)),
            q.forward_quantized(&qin, None)
        );
    }

    #[test]
    fn dense_rows_dispatch_and_masked_rows_compact() {
        let (q, _) = quantized_micro(80);
        let c0 = q.conv(0);
        let patch = c0.patch_len();
        // Skip one product of channel 1 only.
        let mut mask = vec![false; c0.geom.out_c * patch];
        mask[patch + 2] = true;
        let cc = CompiledConv::from_mask(c0, &mask);
        assert!(!cc.is_dense(patch));
        // `retained` counts mask-retained products, zero weights included.
        assert_eq!(cc.retained[0] as usize, patch);
        assert_eq!(cc.retained[1] as usize, patch - 1);
        // Streams hold exactly the retained nonzero-weight products,
        // ascending, with matching weights.
        for o in [0usize, 1] {
            let s = cc.row_offsets[o] as usize;
            let e = cc.row_offsets[o + 1] as usize;
            let idx_row = &cc.idx[s..e];
            assert!(
                idx_row.windows(2).all(|w| w[0] < w[1]),
                "indices not ascending"
            );
            let wrow = &c0.weights[o * patch..(o + 1) * patch];
            let want: Vec<i16> = (0..patch)
                .filter(|&i| wrow[i] != 0 && !(o == 1 && i == 2))
                .map(|i| i as i16)
                .collect();
            assert_eq!(idx_row, &want[..], "channel {o}");
            for (j, &ix) in idx_row.iter().enumerate() {
                assert_eq!(cc.w[s + j], wrow[ix as usize]);
            }
        }
        assert!(!cc.idx[cc.row_offsets[1] as usize..cc.row_offsets[2] as usize].contains(&2));
    }

    #[test]
    fn out_stage_bit_exact_with_reference_requantize() {
        use crate::forward::clamp_out;
        let (q, _) = quantized_micro(83);
        let mut rng = StdRng::seed_from_u64(83);
        for k in 0..q.conv_indices().len() {
            let c = q.conv(k);
            let stage = OutStage::new(c);
            let (lo, hi) = c.act_bounds();
            let out_zp = c.out_qp.zero_point;
            // Edge accumulators plus a random sweep.
            let mut accs = vec![
                0,
                1,
                -1,
                i32::MAX,
                i32::MIN,
                i32::MAX - 1,
                i32::MIN + 1,
                1 << 30,
            ];
            for _ in 0..20_000 {
                accs.push(rng.gen_range(i32::MIN..i32::MAX));
                accs.push(rng.gen_range(-5_000_000i32..5_000_000));
            }
            for &a in &accs {
                assert_eq!(
                    stage.apply(a),
                    clamp_out(a, c, out_zp, lo, hi),
                    "conv {k}, acc {a}"
                );
            }
        }
    }

    #[test]
    fn retained_conv_macs_matches_bool_accounting() {
        let (q, _) = quantized_micro(81);
        let masks = random_masks(&q, 9, 4);
        let compiled = CompiledMasks::compile(&q, &masks);
        let dense: u64 = (0..q.conv_indices().len())
            .map(|k| q.conv(k).geom.macs())
            .sum();
        assert_eq!(
            compiled.retained_conv_macs(&q),
            dense - masks.skipped_macs(&q)
        );
    }
}
