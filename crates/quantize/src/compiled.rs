//! Compiled skip-mask execution: the DSE hot path without per-product
//! branching.
//!
//! The reference masked kernel ([`SkipMaskSet`]-driven) tests a `bool` per
//! product inside the innermost MAC loop — one load + one branch per
//! product, thousands of times per output position, for every one of the
//! thousands of designs the DSE simulates. Exactly like the paper compiles
//! skip decisions *into the generated code* (Eq. (3): skipped products are
//! simply absent), [`CompiledMasks`] moves all mask interpretation out of
//! the inner loop and into the data layout, once per design: per output
//! channel, the retained products are compacted into a contiguous stream of
//! **weight pairs**, and a layer whose mask skips nothing compiles to
//! `None` — dense-stream dispatch.
//!
//! ## Kernel shape: the paper's SMLAD pairing, host-width
//!
//! The paper's generated MCU code feeds SMLAD with offline-packed weight
//! pairs ([`tinytensor::simd::pack_weight_pairs`]). The host kernel adopts
//! the same pairing at SIMD width: columns are stored **pair-interleaved**
//! ([`tinytensor::im2col::interleave_pair_rows`]) — pair row `i` holds
//! patch elements `2i` and `2i+1` elementwise interleaved across all
//! lanes — and each stream entry broadcasts one `(w_even, w_odd)` pair
//! against its pair row, so
//!
//! * one AVX-512 VNNI `vpdpwssd` (or AVX2 `vpmaddwd`, or two scalar
//!   multiplies — runtime-dispatched, all bit-exact integer math) consumes
//!   **two products of 16 lanes at once**, with no shuffles in the loop:
//!   the interleave happened at column-fill time;
//! * a product masked out of a pair simply compiles to weight 0 (`0·a = 0`
//!   in wrapping i32 arithmetic — exact), and a pair with both weights 0
//!   drops out of the stream entirely, so masked layers get *faster* with
//!   every skipped product instead of paying a branch to avoid work;
//! * a **lane** is one output position of one image: the same kernel runs
//!   per-image (`lanes = positions`) and batch-major
//!   (`lanes = B · positions`, see [`crate::batch`]), where each weight
//!   pair broadcasts across all `B × positions` contiguous lanes in one
//!   pass — weight streams, requantization parameters and the
//!   branch-resolved output stage are traversed once per batch instead of
//!   once per image;
//! * per lane, accumulation still groups products `(2i, 2i+1)` ascending —
//!   a regrouping of the reference kernel's ascending-order wrapping i32
//!   additions, which is associative, so results are **bit-exact** with the
//!   `Vec<bool>` path.
//!
//! Bit-exactness is enforced by unit tests here (including cross-checking
//! every available SIMD dispatch level against the scalar kernel) and
//! workspace proptests over random models, τ grids and images
//! (`tests/compiled_masks.rs`, `tests/batched_forward.rs`).

use crate::forward::{
    argmax_i8, dense_forward, gap_forward_nhwc, pool_forward, ForwardScratch, SkipMaskSet,
};
use crate::plan::{
    AddSegment, ConvSegment, DenseSegment, ExecBackend, GapSegment, LogitsSegment, PoolSegment,
};
use crate::qmodel::{QConv, QLayer, QuantModel};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use tinytensor::im2col::{
    fill_im2col_centered_t, fill_im2col_pairs_planar_pitched, interleave_pair_rows,
};
use tinytensor::quant::avg_round;

/// One conv layer's mask compiled into compact retained weight-pair streams.
///
/// Entry `j` of a channel covers patch elements `2·r` and `2·r + 1` of
/// pair row `r = Σ deltas[..=j]` (the [`tinytensor::stream`] delta
/// encoding — ascending within a channel, reference accumulation order
/// regrouped pairwise) with weights `w[2j]` / `w[2j + 1]`; a masked (or
/// zero-weight, or past-the-end for odd patch lengths) half carries weight
/// 0 and contributes exactly nothing. Gaps wider than
/// [`tinytensor::stream::MAX_DELTA`] pair rows are bridged by phantom
/// entries whose weight pair is `(0, 0)` — also contributing exactly
/// nothing. Channels whose mask retains everything still stream their
/// nonzero weight pairs; a mask that skips nothing anywhere compiles to
/// `None` at the [`CompiledMasks`] level (dense-stream dispatch through
/// the same kernel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledConv {
    /// Per-channel `[start, end)` entry spans into `deltas` (and, doubled,
    /// into `w`); length `out_c + 1`.
    pub row_offsets: Vec<u32>,
    /// Delta-encoded pair-row index of each entry ([`tinytensor::stream`]):
    /// within a channel, entry `j`'s pair row is the running sum of
    /// `deltas[..=j]` measured from the channel's span start. One byte per
    /// entry, and the hot loop reconstructs rows with a single add — the
    /// same encoding unpackgen's flash streams use.
    pub deltas: Vec<u8>,
    /// Interleaved weight pairs: entry `j` multiplies its pair row by
    /// `(w[2j], w[2j+1])`. A 0 half is a skipped/zero/absent product; a
    /// `(0, 0)` pair is a phantom gap-bridge.
    pub w: Vec<i8>,
    /// Retained products per channel, zero weights included (cost
    /// accounting that matches the boolean masks without re-scanning).
    pub retained: Vec<u32>,
}

impl CompiledConv {
    /// Compile one conv layer's boolean mask (`true` = skip).
    pub fn from_mask(conv: &QConv, mask: &[bool]) -> Self {
        let patch = conv.patch_len();
        let out_c = conv.geom.out_c;
        assert_eq!(mask.len(), out_c * patch, "mask length mismatch");
        Self::build(conv, |o, i| mask[o * patch + i])
    }

    /// Compile the dense (nothing-skipped) stream of a conv layer — the
    /// exact-layer execution form (zero weights still dropped, which is
    /// bit-exact and strictly faster).
    pub fn dense(conv: &QConv) -> Self {
        Self::build(conv, |_, _| false)
    }

    /// Compile from any skip predicate over `(channel, patch index)`.
    ///
    /// Every channel — dense or masked — gets a pair stream holding its
    /// retained products with **zero weights dropped** (they contribute
    /// exactly 0, so dropping them is bit-exact; it is the compile-time
    /// analogue of the unpacked engine's `drop_zero_weights`). `retained`
    /// still counts every mask-retained product, zero-weight or not, so
    /// cost accounting matches the boolean masks.
    pub fn build(conv: &QConv, skip: impl Fn(usize, usize) -> bool) -> Self {
        let patch = conv.patch_len();
        let out_c = conv.geom.out_c;
        let pair_rows = patch.div_ceil(2);
        let mut row_offsets = Vec::with_capacity(out_c + 1);
        let mut deltas = Vec::new();
        let mut w = Vec::new();
        let mut retained = Vec::with_capacity(out_c);
        row_offsets.push(0u32);
        for o in 0..out_c {
            let wrow = &conv.weights[o * patch..(o + 1) * patch];
            let mut kept = 0u32;
            let mut enc = tinytensor::stream::DeltaWriter::new();
            for i in 0..pair_rows {
                let e0 = 2 * i;
                let e1 = 2 * i + 1;
                let mut w0 = 0i8;
                let mut w1 = 0i8;
                if !skip(o, e0) {
                    kept += 1;
                    w0 = wrow[e0];
                }
                if e1 < patch && !skip(o, e1) {
                    kept += 1;
                    w1 = wrow[e1];
                }
                if w0 != 0 || w1 != 0 {
                    // Wide gaps are bridged by phantom (0, 0) weight pairs
                    // so the kernel's running-row add never overflows a
                    // delta byte.
                    for _ in 0..enc.push(i) {
                        w.push(0);
                        w.push(0);
                    }
                    w.push(w0);
                    w.push(w1);
                }
            }
            retained.push(kept);
            deltas.extend_from_slice(&enc.finish());
            row_offsets.push(deltas.len() as u32);
        }
        Self {
            row_offsets,
            deltas,
            w,
            retained,
        }
    }

    /// Absolute pair-row index of every entry of channel `o` (phantom
    /// gap-bridges included) — the decoded view for tests, cost accounting
    /// and stream introspection; the kernels never materialize this.
    pub fn channel_pair_rows(&self, o: usize) -> Vec<usize> {
        let s = self.row_offsets[o] as usize;
        let e = self.row_offsets[o + 1] as usize;
        tinytensor::stream::decode_indices(&self.deltas[s..e])
    }

    /// True when every channel retains all `patch` products (the mask
    /// skipped nothing) — derived from `retained`, no separate state.
    pub fn is_dense(&self, patch: usize) -> bool {
        self.retained.iter().all(|&r| r as usize == patch)
    }

    /// Total retained products over all channels.
    pub fn retained_products(&self) -> u64 {
        self.retained.iter().map(|&r| r as u64).sum()
    }

    /// Approximate heap bytes of this stream (reporting only). The
    /// per-entry cost is [`tinytensor::stream::encoded_bytes`]'s: one delta
    /// byte plus the two-weight payload.
    pub fn resident_bytes(&self) -> u64 {
        (4 * self.row_offsets.len() + 4 * self.retained.len()) as u64
            + tinytensor::stream::encoded_bytes(self.deltas.len(), 2)
    }
}

/// τ-independent dense (nothing-skipped) pair streams of every conv layer
/// of `model` — the exact-layer dispatch form, built once per scratch and
/// binding that scratch to `model`.
pub(crate) fn dense_streams(model: &QuantModel) -> Vec<CompiledConv> {
    (0..model.conv_indices().len())
        .map(|k| CompiledConv::dense(model.conv(k)))
        .collect()
}

/// A full design's masks in compiled form (`None` = layer left exact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledMasks {
    /// One optional compiled mask per conv ordinal.
    pub per_conv: Vec<Option<CompiledConv>>,
}

impl CompiledMasks {
    /// Compile a boolean [`SkipMaskSet`] against `model`.
    ///
    /// Masks that skip nothing compile to `None` (dense-stream dispatch),
    /// which is semantically identical and strictly faster.
    pub fn compile(model: &QuantModel, masks: &SkipMaskSet) -> Self {
        let per_conv = masks
            .per_conv
            .iter()
            .enumerate()
            .map(|(k, m)| {
                m.as_ref().and_then(|mask| {
                    let conv = model.conv(k);
                    let cc = CompiledConv::from_mask(conv, mask);
                    if cc.is_dense(conv.patch_len()) {
                        None
                    } else {
                        Some(cc)
                    }
                })
            })
            .collect();
        Self { per_conv }
    }

    /// No approximation anywhere.
    pub fn none(n_convs: usize) -> Self {
        Self {
            per_conv: vec![None; n_convs],
        }
    }

    /// Retained conv MACs under these masks, dense (exact) layers
    /// contributing their full product count.
    pub fn retained_conv_macs(&self, model: &QuantModel) -> u64 {
        let mut total = 0u64;
        for (k, cm) in self.per_conv.iter().enumerate() {
            let conv = model.conv(k);
            let products = match cm {
                Some(cc) => cc.retained_products(),
                None => (conv.geom.out_c * conv.patch_len()) as u64,
            };
            total += products * conv.geom.out_positions() as u64;
        }
        total
    }

    /// Approximate heap bytes of the compiled streams (reporting only).
    pub fn resident_bytes(&self) -> u64 {
        self.per_conv
            .iter()
            .flatten()
            .map(CompiledConv::resident_bytes)
            .sum()
    }
}

/// SIMD dispatch level of the pair-stream kernel, detected once per
/// process. Every level computes identical wrapping i32 arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SimdLevel {
    /// Portable pair loop (also the semantic reference for the others).
    Scalar,
    /// AVX2 `vpmaddwd`, 8 lanes × 2 products per instruction.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// AVX-512 VNNI `vpdpwssd`, 16 lanes × 2 products per instruction.
    #[cfg(target_arch = "x86_64")]
    Vnni,
}

pub(crate) fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vnni") {
                SimdLevel::Vnni
            } else if is_x86_feature_detected!("avx2") {
                SimdLevel::Avx2
            } else {
                SimdLevel::Scalar
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        SimdLevel::Scalar
    })
}

/// Human-readable name of the SIMD dispatch level the pair-stream kernels
/// run at on this host (perf-trajectory reporting: throughput numbers are
/// only comparable at the same level).
pub fn simd_level_name() -> &'static str {
    match simd_level() {
        SimdLevel::Scalar => "scalar",
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => "avx2",
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Vnni => "avx512-vnni",
    }
}

/// All dispatch levels this host can execute (most capable last) — lets
/// tests cross-check every reachable kernel against the scalar reference.
#[cfg(test)]
pub(crate) fn available_simd_levels() -> Vec<SimdLevel> {
    let mut levels = vec![SimdLevel::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            levels.push(SimdLevel::Avx2);
        }
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vnni") {
            levels.push(SimdLevel::Vnni);
        }
    }
    levels
}

/// Kernel micro-optimization toggles, read once per process. Defaults are
/// the adopted (A/B-winning) configuration; the environment overrides
/// (`ATAMAN_KERNEL_PREFETCH=0/1`, `ATAMAN_KERNEL_SPLIT_CHAINS=0/1`) exist
/// so `batch_micro` can interleave on/off runs in one binary on the noisy
/// single-CPU builder — every toggle is bit-exact, only speed differs.
#[cfg(target_arch = "x86_64")]
pub(crate) struct KernelTuning {
    /// Software-prefetch the next stream entries' pair rows during MAC
    /// loops.
    pub prefetch: bool,
    /// Split the VNNI quartet's serial `vpdpwssd` dependency chain into two
    /// independent chains joined by one add (wrapping adds commute, so any
    /// accumulation reorder is bit-exact).
    pub split_chains: bool,
}

#[cfg(target_arch = "x86_64")]
pub(crate) fn kernel_tuning() -> &'static KernelTuning {
    static TUNING: OnceLock<KernelTuning> = OnceLock::new();
    TUNING.get_or_init(|| {
        let flag = |name: &str, default: bool| match std::env::var(name) {
            Ok(v) => v != "0",
            Err(_) => default,
        };
        KernelTuning {
            prefetch: flag("ATAMAN_KERNEL_PREFETCH", true),
            split_chains: flag("ATAMAN_KERNEL_SPLIT_CHAINS", true),
        }
    })
}

/// Apply one channel's pair stream to `acc[..b]` over lanes
/// `[p0, p0 + b)` — portable reference loop. `pcolt` is the
/// pair-interleaved column buffer with `lanes` lanes per pair row; `dx` is
/// the channel's delta-encoded pair-row stream (the running sum of deltas
/// is the absolute row).
fn apply_stream_scalar(
    pcolt: &[i16],
    lanes: usize,
    p0: usize,
    dx: &[u8],
    w: &[i8],
    acc: &mut [i32],
) {
    let b = acc.len();
    let mut ri = 0usize;
    for (j, &d) in dx.iter().enumerate() {
        ri += d as usize;
        let row = &pcolt[ri * 2 * lanes + 2 * p0..][..2 * b];
        let w0 = w[2 * j] as i32;
        let w1 = w[2 * j + 1] as i32;
        for (p, a) in acc.iter_mut().enumerate() {
            *a += row[2 * p] as i32 * w0 + row[2 * p + 1] as i32 * w1;
        }
    }
}

/// AVX2 `vpmaddwd` pair kernel: two stream entries per pass to halve
/// accumulator traffic. Bit-exact with [`apply_stream_scalar`] (`vpmaddwd`
/// computes the same two i16×i16 products and their i32 sum; the adds are
/// the same wrapping i32 additions, regrouped — associative).
///
/// SAFETY: caller must ensure AVX2 is available; slice bounds match the
/// scalar kernel's accesses exactly.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn apply_stream_avx2(
    pcolt: &[i16],
    lanes: usize,
    p0: usize,
    dx: &[u8],
    w: &[i8],
    acc: &mut [i32],
) {
    use std::arch::x86_64::*;
    // SAFETY: the caller guarantees AVX2 is available; every pointer access
    // below matches the scalar kernel's slice indexing exactly, which the
    // window asserts in `conv_forward_pairs_window` keep in bounds.
    unsafe {
        let b = acc.len();
        let n = dx.len();
        let prefetch = kernel_tuning().prefetch;
        let wpair = |j: usize| -> i32 {
            (((w[2 * j + 1] as i16 as u16 as u32) << 16) | (w[2 * j] as i16 as u16 as u32)) as i32
        };
        let mut j = 0;
        let mut ri = 0usize;
        while j + 2 <= n {
            let r0i = ri + dx[j] as usize;
            let r1i = r0i + dx[j + 1] as usize;
            let r0 = pcolt.as_ptr().add(r0i * 2 * lanes + 2 * p0);
            let r1 = pcolt.as_ptr().add(r1i * 2 * lanes + 2 * p0);
            if prefetch && j + 4 <= n {
                // Next pass's pair rows at this lane window's base — hides the
                // first-touch miss of each row behind the current pass's MACs.
                let n0 = r1i + dx[j + 2] as usize;
                let n1 = n0 + dx[j + 3] as usize;
                _mm_prefetch::<_MM_HINT_T0>(
                    pcolt.as_ptr().add(n0 * 2 * lanes + 2 * p0) as *const i8
                );
                _mm_prefetch::<_MM_HINT_T0>(
                    pcolt.as_ptr().add(n1 * 2 * lanes + 2 * p0) as *const i8
                );
            }
            let wv0 = _mm256_set1_epi32(wpair(j));
            let wv1 = _mm256_set1_epi32(wpair(j + 1));
            let mut p = 0usize;
            while p + 8 <= b {
                let a0 = _mm256_loadu_si256(r0.add(2 * p) as *const __m256i);
                let a1 = _mm256_loadu_si256(r1.add(2 * p) as *const __m256i);
                let accv = _mm256_loadu_si256(acc.as_ptr().add(p) as *const __m256i);
                let s = _mm256_add_epi32(
                    accv,
                    _mm256_add_epi32(_mm256_madd_epi16(a0, wv0), _mm256_madd_epi16(a1, wv1)),
                );
                _mm256_storeu_si256(acc.as_mut_ptr().add(p) as *mut __m256i, s);
                p += 8;
            }
            while p < b {
                let s0 = (*r0.add(2 * p) as i32) * (w[2 * j] as i32)
                    + (*r0.add(2 * p + 1) as i32) * (w[2 * j + 1] as i32);
                let s1 = (*r1.add(2 * p) as i32) * (w[2 * j + 2] as i32)
                    + (*r1.add(2 * p + 1) as i32) * (w[2 * j + 3] as i32);
                acc[p] = acc[p].wrapping_add(s0).wrapping_add(s1);
                p += 1;
            }
            ri = r1i;
            j += 2;
        }
        if j < n {
            let r0i = ri + dx[j] as usize;
            let r0 = pcolt.as_ptr().add(r0i * 2 * lanes + 2 * p0);
            let wv0 = _mm256_set1_epi32(wpair(j));
            let mut p = 0usize;
            while p + 8 <= b {
                let a0 = _mm256_loadu_si256(r0.add(2 * p) as *const __m256i);
                let accv = _mm256_loadu_si256(acc.as_ptr().add(p) as *const __m256i);
                let s = _mm256_add_epi32(accv, _mm256_madd_epi16(a0, wv0));
                _mm256_storeu_si256(acc.as_mut_ptr().add(p) as *mut __m256i, s);
                p += 8;
            }
            while p < b {
                let s0 = (*r0.add(2 * p) as i32) * (w[2 * j] as i32)
                    + (*r0.add(2 * p + 1) as i32) * (w[2 * j + 1] as i32);
                acc[p] = acc[p].wrapping_add(s0);
                p += 1;
            }
        }
    }
}

/// AVX-512 VNNI `vpdpwssd` pair kernel: the widest path — 16 lanes × 2
/// products per instruction, four stream entries per pass (quartering
/// accumulator load/store traffic; independent lane iterations keep the
/// `vpdpwssd` chains pipelined). `vpdpwssd` is the non-saturating
/// dot-product accumulate, i.e. exactly the scalar kernel's wrapping
/// arithmetic.
///
/// SAFETY: caller must ensure AVX-512F + AVX-512 VNNI are available; slice
/// bounds match the scalar kernel's accesses exactly.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vnni")]
unsafe fn apply_stream_vnni(
    pcolt: &[i16],
    lanes: usize,
    p0: usize,
    dx: &[u8],
    w: &[i8],
    acc: &mut [i32],
) {
    use std::arch::x86_64::*;
    // SAFETY: the caller guarantees AVX-512F + AVX-512 VNNI are available;
    // every pointer access below matches the scalar kernel's slice indexing
    // exactly (in bounds by `conv_forward_pairs_window`'s asserts).
    unsafe {
        let b = acc.len();
        let n = dx.len();
        let tuning = kernel_tuning();
        let wpair = |j: usize| -> i32 {
            (((w[2 * j + 1] as i16 as u16 as u32) << 16) | (w[2 * j] as i16 as u16 as u32)) as i32
        };
        let mut j = 0;
        let mut ri = 0usize;
        while j + 4 <= n {
            let r0i = ri + dx[j] as usize;
            let r1i = r0i + dx[j + 1] as usize;
            let r2i = r1i + dx[j + 2] as usize;
            let r3i = r2i + dx[j + 3] as usize;
            let row = |i: usize| pcolt.as_ptr().add(i * 2 * lanes + 2 * p0);
            let (r0, r1, r2, r3) = (row(r0i), row(r1i), row(r2i), row(r3i));
            if tuning.prefetch && j + 8 <= n {
                // Next quartet's pair rows at this lane window's base — the
                // deltas make their addresses one add each.
                let mut pi = r3i;
                for k in 0..4 {
                    pi += dx[j + 4 + k] as usize;
                    _mm_prefetch::<_MM_HINT_T0>(row(pi) as *const i8);
                }
            }
            let wv0 = _mm512_set1_epi32(wpair(j));
            let wv1 = _mm512_set1_epi32(wpair(j + 1));
            let wv2 = _mm512_set1_epi32(wpair(j + 2));
            let wv3 = _mm512_set1_epi32(wpair(j + 3));
            let mut p = 0usize;
            if tuning.split_chains {
                // Two independent 2-deep `vpdpwssd` chains joined by one add
                // instead of one 4-deep serial chain: wrapping adds commute, so
                // the regroup is bit-exact, and the chains pipeline across
                // ports instead of serializing on the accumulator.
                let zero = _mm512_setzero_si512();
                while p + 16 <= b {
                    let a0 = _mm512_loadu_si512(r0.add(2 * p) as *const _);
                    let a1 = _mm512_loadu_si512(r1.add(2 * p) as *const _);
                    let a2 = _mm512_loadu_si512(r2.add(2 * p) as *const _);
                    let a3 = _mm512_loadu_si512(r3.add(2 * p) as *const _);
                    let accv = _mm512_loadu_si512(acc.as_ptr().add(p) as *const _);
                    let c0 = _mm512_dpwssd_epi32(_mm512_dpwssd_epi32(accv, a0, wv0), a1, wv1);
                    let c1 = _mm512_dpwssd_epi32(_mm512_dpwssd_epi32(zero, a2, wv2), a3, wv3);
                    let s = _mm512_add_epi32(c0, c1);
                    _mm512_storeu_si512(acc.as_mut_ptr().add(p) as *mut _, s);
                    p += 16;
                }
            } else {
                while p + 16 <= b {
                    let a0 = _mm512_loadu_si512(r0.add(2 * p) as *const _);
                    let a1 = _mm512_loadu_si512(r1.add(2 * p) as *const _);
                    let a2 = _mm512_loadu_si512(r2.add(2 * p) as *const _);
                    let a3 = _mm512_loadu_si512(r3.add(2 * p) as *const _);
                    let accv = _mm512_loadu_si512(acc.as_ptr().add(p) as *const _);
                    let s01 = _mm512_dpwssd_epi32(_mm512_dpwssd_epi32(accv, a0, wv0), a1, wv1);
                    let s = _mm512_dpwssd_epi32(_mm512_dpwssd_epi32(s01, a2, wv2), a3, wv3);
                    _mm512_storeu_si512(acc.as_mut_ptr().add(p) as *mut _, s);
                    p += 16;
                }
            }
            while p < b {
                let scalar_pair = |r: *const i16, jj: usize| -> i32 {
                    (*r.add(2 * p) as i32) * (w[2 * jj] as i32)
                        + (*r.add(2 * p + 1) as i32) * (w[2 * jj + 1] as i32)
                };
                acc[p] = acc[p]
                    .wrapping_add(scalar_pair(r0, j))
                    .wrapping_add(scalar_pair(r1, j + 1))
                    .wrapping_add(scalar_pair(r2, j + 2))
                    .wrapping_add(scalar_pair(r3, j + 3));
                p += 1;
            }
            ri = r3i;
            j += 4;
        }
        while j < n {
            ri += dx[j] as usize;
            let r0 = pcolt.as_ptr().add(ri * 2 * lanes + 2 * p0);
            let wv0 = _mm512_set1_epi32(wpair(j));
            let mut p = 0usize;
            while p + 16 <= b {
                let a0 = _mm512_loadu_si512(r0.add(2 * p) as *const _);
                let accv = _mm512_loadu_si512(acc.as_ptr().add(p) as *const _);
                let s = _mm512_dpwssd_epi32(accv, a0, wv0);
                _mm512_storeu_si512(acc.as_mut_ptr().add(p) as *mut _, s);
                p += 16;
            }
            while p < b {
                let s0 = (*r0.add(2 * p) as i32) * (w[2 * j] as i32)
                    + (*r0.add(2 * p + 1) as i32) * (w[2 * j + 1] as i32);
                acc[p] = acc[p].wrapping_add(s0);
                p += 1;
            }
            j += 1;
        }
    }
}

/// One conv layer's output stage (requantize + zero point + clamp) with the
/// left/right shift direction resolved once per layer and every branch of
/// the gemmlowp pipeline flattened to selects.
///
/// Bit-exact with `clamp_out` / `tinytensor::quant::requantize` for every
/// i32 accumulator: the saturating pre-shift becomes an i64 multiply +
/// clamp, and the `a == b == i32::MIN` saturation case of the doubling
/// high-mul cannot fire because quantized-model multipliers are
/// non-negative (`RequantMultiplier::from_real` range) — asserted at
/// construction. Unit-tested against the reference over random
/// accumulators.
#[derive(Clone, Copy)]
struct OutStage {
    /// `1 << max(shift, 0)` — the saturating left pre-shift as a multiply.
    left_mul: i64,
    /// Fixed-point multiplier (non-negative).
    m: i64,
    /// `max(-shift, 0)` — rounding right-shift exponent.
    right: i32,
    zp: i32,
    lo: i32,
    hi: i32,
}

impl OutStage {
    fn new(c: &QConv) -> Self {
        assert!(c.mult.multiplier >= 0, "negative requant multiplier");
        let (lo, hi) = c.act_bounds();
        Self {
            left_mul: 1i64 << c.mult.shift.max(0),
            m: c.mult.multiplier as i64,
            right: (-c.mult.shift).max(0),
            zp: c.out_qp.zero_point,
            lo,
            hi,
        }
    }

    #[inline(always)]
    fn apply(&self, acc: i32) -> i8 {
        // `value.saturating_mul(1 << left)` without the overflow branches.
        let pre = (acc as i64 * self.left_mul).clamp(i32::MIN as i64, i32::MAX as i64);
        // SaturatingRoundingDoublingHighMul with b >= 0: never saturates.
        let ab = pre * self.m;
        let nudge = if ab >= 0 {
            1i64 << 30
        } else {
            1 - (1i64 << 30)
        };
        let v = ((ab + nudge) / (1i64 << 31)) as i32;
        // RoundingDivideByPOT with a per-layer constant exponent.
        let v = if self.right == 0 {
            v
        } else {
            let mask = (1i64 << self.right) - 1;
            let remainder = i64::from(v) & mask;
            let threshold = (mask >> 1) + i64::from(v < 0);
            (v >> self.right) + i32::from(remainder > threshold)
        };
        // `requantize_to_i8`'s [-128, 127] clamp is subsumed by the fused
        // ReLU bounds (always within i8 range).
        (v + self.zp).clamp(self.lo, self.hi) as i8
    }
}

/// L1 budget for one lane block of pair-interleaved columns (bytes). Blocks
/// sized so every pair row of a block stays cache-hot across all output
/// channels of the layer.
const COLT_BLOCK_BYTES: usize = 36 * 1024;

/// Lane-block size for a layer: L1 budget over the pair-row working set,
/// rounded down to a whole number of 16-lane vectors so the SIMD kernels
/// only ever run scalar tails on the final block of the lane space.
fn lane_block(pair_rows: usize, lanes: usize) -> usize {
    let block = (COLT_BLOCK_BYTES / (4 * pair_rows)).clamp(64, lanes.max(64));
    (block & !15).max(16)
}

/// Conv forward over pair-interleaved columns with a compiled weight-pair
/// stream (masked or dense), writing **planar** output
/// (`output[o * lanes + p]`) so every store is contiguous.
///
/// `lanes` is the column lane count: `positions` for one image,
/// `B · positions` for a batch. Lane-blocked: channels iterate inside a
/// block of lanes whose pair rows fit L1, so the (out_c − 1) re-reads of
/// each row hit cache instead of streaming the whole column matrix per
/// channel.
pub(crate) fn conv_forward_pairs(
    c: &QConv,
    cc: &CompiledConv,
    pcolt: &[i16],
    lanes: usize,
    acc: &mut [i32],
    output: &mut [i8],
) {
    conv_forward_pairs_with_level(c, cc, pcolt, lanes, acc, output, simd_level());
}

/// [`conv_forward_pairs`] at an explicit dispatch level (tests cross-check
/// every available level against scalar).
pub(crate) fn conv_forward_pairs_with_level(
    c: &QConv,
    cc: &CompiledConv,
    pcolt: &[i16],
    lanes: usize,
    acc: &mut [i32],
    output: &mut [i8],
    level: SimdLevel,
) {
    let out_c = c.geom.out_c;
    assert!(output.len() >= out_c * lanes);
    // SAFETY: the output covers `out_c` rows of pitch `lanes` and this is
    // the only writer.
    unsafe {
        conv_forward_pairs_window(
            c,
            cc,
            pcolt,
            lanes,
            0,
            lanes,
            acc,
            output.as_mut_ptr(),
            lanes,
            0,
            level,
        )
    };
}

/// The windowed, pitched kernel core behind every conv execution path:
/// apply `cc`'s streams to column lanes `[p_lo, p_hi)` of `pcolt` (whose
/// pair rows have `colt_lanes` lanes), writing channel `o`, lane `p` to
/// `output[o * out_pitch + out_base + (p - p_lo)]`.
///
/// Three shapes ride on this one function:
/// * whole-buffer (`p_lo = 0`, `p_hi = colt_lanes`, `out_pitch =
///   colt_lanes`, `out_base = 0`) — the per-image path and small batches;
/// * **image-group tiles** with tile-local columns (`colt_lanes` = the
///   tile's lanes, `out_base` = the tile's first lane in the full batch,
///   `out_pitch` = the full batch's lanes) — the fill/MAC interleave that
///   keeps the column working set batch-size-independent, and the parallel
///   work unit;
/// * **lane windows** over a shared full-batch column buffer (`p_lo > 0`)
///   — parallel MAC over prefilled (cached conv0) columns.
///
/// Lane-blocked inside the window so each block's pair rows stay L1-hot
/// across all output channels.
///
/// # Safety
/// `output` must be valid for writes over every
/// `o * out_pitch + out_base + [0, p_hi - p_lo)` for `o < out_c`, and no
/// other thread may concurrently touch those elements. Distinct windows
/// (disjoint `[p_lo, p_hi)` at the same `out_base - p_lo` shift) write
/// disjoint elements, which is what makes tile-parallel execution sound.
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn conv_forward_pairs_window(
    c: &QConv,
    cc: &CompiledConv,
    pcolt: &[i16],
    colt_lanes: usize,
    p_lo: usize,
    p_hi: usize,
    acc: &mut [i32],
    output: *mut i8,
    out_pitch: usize,
    out_base: usize,
    level: SimdLevel,
) {
    let pair_rows = c.patch_len().div_ceil(2);
    let out_c = c.geom.out_c;
    assert!(pcolt.len() >= pair_rows * 2 * colt_lanes);
    assert!(p_lo <= p_hi && p_hi <= colt_lanes);
    let window = p_hi - p_lo;
    assert!(acc.len() >= lane_block(pair_rows, window).min(window.max(1)));
    let stage = OutStage::new(c);
    let block = lane_block(pair_rows, window);

    let mut p0 = p_lo;
    while p0 < p_hi {
        let b = block.min(p_hi - p0);
        let acc = &mut acc[..b];
        for o in 0..out_c {
            acc.fill(c.bias[o]);
            let s = cc.row_offsets[o] as usize;
            let e = cc.row_offsets[o + 1] as usize;
            let (dx, ws) = (&cc.deltas[s..e], &cc.w[2 * s..2 * e]);
            match level {
                SimdLevel::Scalar => apply_stream_scalar(pcolt, colt_lanes, p0, dx, ws, acc),
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `level` only reaches Avx2/Vnni when the features
                // were runtime-detected (`simd_level`/`available_simd_levels`).
                SimdLevel::Avx2 => unsafe { apply_stream_avx2(pcolt, colt_lanes, p0, dx, ws, acc) },
                #[cfg(target_arch = "x86_64")]
                SimdLevel::Vnni => unsafe { apply_stream_vnni(pcolt, colt_lanes, p0, dx, ws, acc) },
            }
            // Output stage: requantize + clamp, contiguous pitched store.
            // Materialized as a slice so the store loop keeps `noalias`
            // (a raw-pointer write loop de-vectorizes the requant — an
            // 11% hit, caught by interleaved A/B).
            // SAFETY: the caller contract (above) guarantees `output` is
            // valid and exclusive over exactly these pitched elements.
            let orow = unsafe {
                std::slice::from_raw_parts_mut(
                    output.add(o * out_pitch + out_base + (p0 - p_lo)),
                    b,
                )
            };
            for (out, &a) in orow.iter_mut().zip(acc.iter()) {
                *out = stage.apply(a);
            }
        }
        p0 += b;
    }
}

impl QuantModel {
    /// Largest output-position count of any conv layer (accumulator
    /// scratch sizing for the compiled kernels).
    pub fn max_conv_positions(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QLayer::Conv(c) => c.geom.out_positions(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Largest pair-interleaved column buffer any conv layer needs, in i16
    /// elements per image (`2 · ⌈patch/2⌉ · positions`).
    pub fn max_pair_colt_elems(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QLayer::Conv(c) => c.patch_len().div_ceil(2) * 2 * c.geom.out_positions(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Pair-interleaved centered columns of the *first* conv layer for one
    /// quantized input — τ-independent, so DSE callers compute them once
    /// per image and share them across every design (the `dse`-side
    /// evaluation cache; [`crate::batch`] holds the batched variant).
    ///
    /// Returns `None` when the model does not start with a convolution.
    pub fn conv0_pair_cols(&self, qinput: &[i8]) -> Option<Vec<i16>> {
        match self.layers.first() {
            Some(QLayer::Conv(c)) => {
                let positions = c.geom.out_positions();
                let patch = c.patch_len();
                let mut rows = vec![0i16; positions * patch];
                fill_centered_t(c, qinput, &mut rows);
                let mut pcolt = vec![0i16; patch.div_ceil(2) * 2 * positions];
                interleave_pair_rows(&rows, positions, patch, &mut pcolt, positions, 0);
                Some(pcolt)
            }
            _ => None,
        }
    }

    /// Forward pass with compiled masks, reusing caller scratch and an
    /// optional precomputed first-conv pair-column cache.
    ///
    /// Bit-exact with [`QuantModel::forward_quantized`] over the boolean
    /// mask set the compiled masks were built from.
    pub fn forward_compiled_scratch(
        &self,
        qinput: &[i8],
        conv0_pcolt: Option<&[i16]>,
        masks: Option<&CompiledMasks>,
        s: &mut ForwardScratch,
    ) -> Vec<i8> {
        let (in_a, cur_len) = self.forward_compiled_core(qinput, conv0_pcolt, masks, s);
        let fin = if in_a {
            &s.act_a[..cur_len]
        } else {
            &s.act_b[..cur_len]
        };
        fin.to_vec()
    }

    /// Forward driver writing into scratch; returns which ping-pong buffer
    /// holds the logits and their length (no allocation).
    fn forward_compiled_core(
        &self,
        qinput: &[i8],
        conv0_pcolt: Option<&[i16]>,
        masks: Option<&CompiledMasks>,
        s: &mut ForwardScratch,
    ) -> (bool, usize) {
        assert_eq!(
            qinput.len(),
            self.input_shape.item_len(),
            "input length mismatch"
        );
        s.ensure_compiled(self);
        let cur_len = qinput.len();
        s.act_a[..cur_len].copy_from_slice(qinput);
        let ForwardScratch {
            plan,
            act_a,
            act_b,
            colt,
            pcolt,
            acc,
            nhwc,
            stash,
            dense_streams,
            ..
        } = s;
        let mut backend = CompiledBackend {
            model: self,
            masks,
            conv0_pcolt,
            dense_streams,
            act_a,
            act_b,
            colt,
            pcolt,
            acc,
            nhwc,
            stash,
            cur_len,
            in_a: true,
        };
        plan.execute(&mut backend);
        let in_a = backend.in_a;
        (in_a, s.plan.logits_len())
    }

    /// Allocation-per-call convenience wrapper over
    /// [`QuantModel::forward_compiled_scratch`].
    pub fn forward_compiled(&self, qinput: &[i8], masks: Option<&CompiledMasks>) -> Vec<i8> {
        let mut scratch = ForwardScratch::for_model(self);
        self.forward_compiled_scratch(qinput, None, masks, &mut scratch)
    }

    /// Predicted class under compiled masks, reusing caller scratch —
    /// allocation-free (argmax runs on the scratch logits in place).
    pub fn predict_compiled_scratch(
        &self,
        qinput: &[i8],
        conv0_pcolt: Option<&[i16]>,
        masks: Option<&CompiledMasks>,
        s: &mut ForwardScratch,
    ) -> usize {
        let (in_a, cur_len) = self.forward_compiled_core(qinput, conv0_pcolt, masks, s);
        let fin = if in_a {
            &s.act_a[..cur_len]
        } else {
            &s.act_b[..cur_len]
        };
        argmax_i8(fin)
    }
}

/// The per-image compiled backend: pair-stream conv kernels over planar
/// activations, with the layout transitions (NHWC input, planar interior,
/// NHWC logits) resolved statically by the plan's fill strategies.
struct CompiledBackend<'r, 'm> {
    model: &'m QuantModel,
    masks: Option<&'r CompiledMasks>,
    conv0_pcolt: Option<&'r [i16]>,
    dense_streams: &'r [CompiledConv],
    act_a: &'r mut Vec<i8>,
    act_b: &'r mut Vec<i8>,
    colt: &'r mut Vec<i16>,
    pcolt: &'r mut Vec<i16>,
    acc: &'r mut Vec<i32>,
    nhwc: &'r mut Vec<i8>,
    /// Residual stash buffers, stored in the layout the producing segment
    /// emitted (the plan records which).
    stash: &'r mut Vec<Vec<i8>>,
    cur_len: usize,
    in_a: bool,
}

impl CompiledBackend<'_, '_> {
    #[inline(always)]
    fn advance(&mut self, out_len: usize) {
        self.cur_len = out_len;
        self.in_a = !self.in_a;
    }
}

impl ExecBackend for CompiledBackend<'_, '_> {
    #[inline]
    fn conv(&mut self, seg: &ConvSegment) {
        let c = self.model.conv_at(seg.layer_idx);
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        let positions = seg.positions;
        let n = seg.pair_rows * 2 * positions;
        let pc: &[i16] = match (seg.ordinal, self.conv0_pcolt) {
            (0, Some(cached)) => {
                assert_eq!(cached.len(), n, "conv0 pair-column cache mismatch");
                cached
            }
            _ => {
                if seg.planar_in {
                    // Planar source: fused fill writes pair rows directly,
                    // no natural-row staging.
                    let in_pos = seg.geom.in_h * seg.geom.in_w;
                    let zp = c.in_qp.zero_point;
                    let pad = c.centered_pad();
                    fill_im2col_pairs_planar_pitched(
                        &src[..self.cur_len],
                        &c.geom,
                        zp as i16,
                        pad,
                        &mut self.pcolt[..n],
                        positions,
                        0,
                        in_pos,
                    );
                } else {
                    let rows = &mut self.colt[..positions * seg.patch];
                    fill_centered_t(c, &src[..self.cur_len], rows);
                    interleave_pair_rows(
                        rows,
                        positions,
                        seg.patch,
                        &mut self.pcolt[..n],
                        positions,
                        0,
                    );
                }
                &self.pcolt[..n]
            }
        };
        let cc = self
            .masks
            .and_then(|m| m.per_conv[seg.ordinal].as_ref())
            .unwrap_or(&self.dense_streams[seg.ordinal]);
        conv_forward_pairs(c, cc, pc, positions, self.acc, &mut dst[..seg.out_len]);
        self.advance(seg.out_len);
    }

    #[inline]
    fn pool(&mut self, seg: &PoolSegment) {
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        if seg.planar_in {
            pool_forward_planar(
                seg.in_h,
                seg.in_w,
                seg.c,
                &src[..self.cur_len],
                &mut dst[..seg.out_len],
            );
        } else {
            pool_forward(
                seg.in_h,
                seg.in_w,
                seg.c,
                &src[..self.cur_len],
                &mut dst[..seg.out_len],
            );
        }
        self.advance(seg.out_len);
    }

    #[inline]
    fn global_avg_pool(&mut self, seg: &GapSegment) {
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        if seg.planar_in {
            gap_forward_planar(
                seg.positions,
                seg.c,
                seg.positions,
                &src[..self.cur_len],
                &mut dst[..seg.out_len],
            );
        } else {
            gap_forward_nhwc(
                seg.positions,
                seg.c,
                &src[..self.cur_len],
                &mut dst[..seg.out_len],
            );
        }
        self.advance(seg.out_len);
    }

    #[inline]
    fn dense(&mut self, seg: &DenseSegment) {
        let d = self.model.dense_at(seg.layer_idx);
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        if let Some((positions, ch)) = seg.planar_in {
            planar_to_nhwc(
                &src[..self.cur_len],
                positions,
                ch,
                &mut self.nhwc[..self.cur_len],
            );
            dense_forward(d, &self.nhwc[..self.cur_len], &mut dst[..seg.out_dim]);
        } else {
            dense_forward(d, &src[..self.cur_len], &mut dst[..seg.out_dim]);
        }
        self.advance(seg.out_dim);
    }

    #[inline(never)]
    fn add(&mut self, seg: &AddSegment) {
        let a = self.model.add_at(seg.layer_idx);
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        crate::batch::add_join_batched(
            a,
            seg,
            1,
            &self.stash[seg.slot][..seg.len],
            &src[..seg.len],
            &mut dst[..seg.len],
        );
        self.advance(seg.len);
    }

    #[inline(never)]
    fn stash(&mut self, slot: usize, len: usize) {
        let src = if self.in_a {
            &self.act_a[..len]
        } else {
            &self.act_b[..len]
        };
        self.stash[slot][..len].copy_from_slice(src);
    }

    #[inline]
    fn logits(&mut self, seg: &LogitsSegment) {
        // A model ending on a conv/pool leaves the buffer planar: convert
        // so callers always see NHWC logits.
        if let Some((positions, ch)) = seg.planar {
            let (src, dst) = if self.in_a {
                (&self.act_a[..], &mut self.act_b[..])
            } else {
                (&self.act_b[..], &mut self.act_a[..])
            };
            planar_to_nhwc(&src[..seg.out_len], positions, ch, &mut dst[..seg.out_len]);
            self.in_a = !self.in_a;
        }
    }
}

/// Global average pool over planar activations: each channel's plane sits
/// at `input[c * plane_pitch ..][..positions]` (`plane_pitch = positions`
/// per-image; a batch passes the batched pitch and per-image offsets).
/// Bit-exact with [`gap_forward_nhwc`] — same sums, same rounding average.
pub(crate) fn gap_forward_planar(
    positions: usize,
    ch: usize,
    plane_pitch: usize,
    input: &[i8],
    output: &mut [i8],
) {
    debug_assert_eq!(output.len(), ch);
    for (c, out) in output.iter_mut().enumerate() {
        let plane = &input[c * plane_pitch..c * plane_pitch + positions];
        let mut sum = 0i32;
        for &v in plane {
            sum += v as i32;
        }
        *out = avg_round(sum, positions as i32);
    }
}

/// Fill `rows` with `c`'s natural transposed centered columns for an NHWC
/// `input` (staging ahead of the pair interleave).
pub(crate) fn fill_centered_t(c: &QConv, input: &[i8], rows: &mut [i16]) {
    let zp = c.in_qp.zero_point;
    fill_im2col_centered_t(input, &c.geom, zp as i16, c.centered_pad(), rows);
}

/// 2×2/2 max-pool over planar activations — contiguous reads and writes
/// per channel (layout change only: max is order- and layout-invariant, so
/// results equal the NHWC reference pool). Also serves batch-major
/// activations directly: a batch stores `C·B` independent planes, so the
/// caller passes `ch = C · B`.
pub(crate) fn pool_forward_planar(
    in_h: usize,
    in_w: usize,
    ch: usize,
    input: &[i8],
    output: &mut [i8],
) {
    let (oh, ow) = (in_h / 2, in_w / 2);
    let in_plane = in_h * in_w;
    let out_plane = oh * ow;
    for c in 0..ch {
        let src = &input[c * in_plane..(c + 1) * in_plane];
        let dst = &mut output[c * out_plane..(c + 1) * out_plane];
        for oy in 0..oh {
            let r0 = &src[(oy * 2) * in_w..(oy * 2) * in_w + in_w];
            let r1 = &src[(oy * 2 + 1) * in_w..(oy * 2 + 1) * in_w + in_w];
            let drow = &mut dst[oy * ow..(oy + 1) * ow];
            for (ox, d) in drow.iter_mut().enumerate() {
                let x = ox * 2;
                *d = r0[x].max(r0[x + 1]).max(r1[x]).max(r1[x + 1]);
            }
        }
    }
}

/// Interleave a planar activation buffer back into NHWC order.
pub(crate) fn planar_to_nhwc(src: &[i8], positions: usize, ch: usize, dst: &mut [i8]) {
    planar_to_nhwc_pitched(src, positions, ch, positions, dst);
}

/// [`planar_to_nhwc`] reading channel `c`'s plane at `src[c * plane_pitch]`
/// — the per-image gather out of a batch-major activation buffer, where a
/// batch of `B` images spaces one image's channel planes `B` planes apart.
pub(crate) fn planar_to_nhwc_pitched(
    src: &[i8],
    positions: usize,
    ch: usize,
    plane_pitch: usize,
    dst: &mut [i8],
) {
    for c in 0..ch {
        let plane = &src[c * plane_pitch..c * plane_pitch + positions];
        for (p, &v) in plane.iter().enumerate() {
            dst[p * ch + c] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::calibrate_ranges;
    use crate::qmodel::quantize_model;
    use cifar10sim::DatasetConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn quantized_micro(seed: u64) -> (QuantModel, cifar10sim::SyntheticCifar) {
        let data = cifar10sim::generate(DatasetConfig::tiny(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        let m = tinynn::Sequential::new("cm", tinytensor::Shape4::nhwc(1, 32, 32, 3))
            .conv_relu(4, 3, &mut rng)
            .maxpool()
            .conv_relu(6, 3, &mut rng)
            .maxpool()
            .dense(10, true, &mut rng);
        let ranges = calibrate_ranges(&m, &data.train.take(8));
        (quantize_model(&m, &ranges), data)
    }

    fn random_masks(q: &QuantModel, seed: u64, density_mod: u64) -> SkipMaskSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = q.conv_indices().len();
        let mut masks = SkipMaskSet::none(n);
        for k in 0..n {
            let c = q.conv(k);
            let len = c.geom.out_c * c.patch_len();
            masks.per_conv[k] = Some(
                (0..len)
                    .map(|_| rng.gen_range(0u64..density_mod) == 0)
                    .collect(),
            );
        }
        masks
    }

    #[test]
    fn compiled_forward_bit_exact_with_bool_reference() {
        let (q, data) = quantized_micro(77);
        for density in [2u64, 5, 50] {
            let masks = random_masks(&q, 1000 + density, density);
            let compiled = CompiledMasks::compile(&q, &masks);
            for i in 0..8 {
                let qin = q.quantize_input(data.test.image(i));
                let want = q.forward_quantized(&qin, Some(&masks));
                let got = q.forward_compiled(&qin, Some(&compiled));
                assert_eq!(got, want, "density {density}, image {i}");
            }
        }
    }

    #[test]
    fn all_simd_levels_bit_exact_with_scalar() {
        let (q, data) = quantized_micro(88);
        let masks = random_masks(&q, 42, 3);
        let compiled = CompiledMasks::compile(&q, &masks);
        let c0 = q.conv(0);
        let cc = compiled.per_conv[0].as_ref().expect("conv 0 masked");
        let positions = c0.geom.out_positions();
        let qin = q.quantize_input(data.test.image(0));
        let pcolt = q.conv0_pair_cols(&qin).expect("starts with conv");
        let mut acc = vec![0i32; positions];
        let mut want = vec![0i8; c0.geom.out_c * positions];
        conv_forward_pairs_with_level(
            c0,
            cc,
            &pcolt,
            positions,
            &mut acc,
            &mut want,
            SimdLevel::Scalar,
        );
        for level in available_simd_levels() {
            let mut got = vec![0i8; c0.geom.out_c * positions];
            conv_forward_pairs_with_level(c0, cc, &pcolt, positions, &mut acc, &mut got, level);
            assert_eq!(got, want, "{level:?}");
        }
        // Odd lane counts exercise every vector tail.
        for lanes_off in 1..4usize {
            let lanes = positions - lanes_off;
            let pair_rows = c0.patch_len().div_ceil(2);
            // Re-lay the columns at the narrower lane count.
            let mut rows = vec![0i16; positions * c0.patch_len()];
            fill_centered_t(c0, &qin, &mut rows);
            let mut narrow_rows = vec![0i16; lanes * c0.patch_len()];
            for i in 0..c0.patch_len() {
                narrow_rows[i * lanes..(i + 1) * lanes]
                    .copy_from_slice(&rows[i * positions..i * positions + lanes]);
            }
            let mut pc = vec![0i16; pair_rows * 2 * lanes];
            interleave_pair_rows(&narrow_rows, lanes, c0.patch_len(), &mut pc, lanes, 0);
            let mut want = vec![0i8; c0.geom.out_c * lanes];
            conv_forward_pairs_with_level(
                c0,
                cc,
                &pc,
                lanes,
                &mut acc,
                &mut want,
                SimdLevel::Scalar,
            );
            for level in available_simd_levels() {
                let mut got = vec![0i8; c0.geom.out_c * lanes];
                conv_forward_pairs_with_level(c0, cc, &pc, lanes, &mut acc, &mut got, level);
                assert_eq!(got, want, "{level:?} lanes {lanes}");
            }
        }
    }

    #[test]
    fn compiled_exact_path_matches_unmasked_reference() {
        let (q, data) = quantized_micro(82);
        for i in 0..6 {
            let qin = q.quantize_input(data.test.image(i));
            assert_eq!(
                q.forward_compiled(&qin, None),
                q.forward_quantized(&qin, None),
                "{i}"
            );
        }
    }

    #[test]
    fn conv0_cache_is_bit_exact() {
        let (q, data) = quantized_micro(78);
        let masks = random_masks(&q, 5, 3);
        let compiled = CompiledMasks::compile(&q, &masks);
        let mut scratch = ForwardScratch::for_model(&q);
        for i in 0..6 {
            let qin = q.quantize_input(data.test.image(i));
            let pcolt = q.conv0_pair_cols(&qin).expect("model starts with conv");
            let want = q.forward_quantized(&qin, Some(&masks));
            let got = q.forward_compiled_scratch(&qin, Some(&pcolt), Some(&compiled), &mut scratch);
            assert_eq!(got, want, "image {i}");
        }
    }

    #[test]
    fn all_false_mask_compiles_to_exact_dispatch() {
        let (q, data) = quantized_micro(79);
        let n = q.conv_indices().len();
        let mut masks = SkipMaskSet::none(n);
        let c0 = q.conv(0);
        masks.per_conv[0] = Some(vec![false; c0.geom.out_c * c0.patch_len()]);
        let compiled = CompiledMasks::compile(&q, &masks);
        assert!(compiled.per_conv.iter().all(|m| m.is_none()));
        let qin = q.quantize_input(data.test.image(0));
        assert_eq!(
            q.forward_compiled(&qin, Some(&compiled)),
            q.forward_quantized(&qin, None)
        );
    }

    #[test]
    fn dense_rows_dispatch_and_masked_rows_compact() {
        let (q, _) = quantized_micro(80);
        let c0 = q.conv(0);
        let patch = c0.patch_len();
        // Skip one product of channel 1 only.
        let mut mask = vec![false; c0.geom.out_c * patch];
        mask[patch + 2] = true;
        let cc = CompiledConv::from_mask(c0, &mask);
        assert!(!cc.is_dense(patch));
        // `retained` counts mask-retained products, zero weights included.
        assert_eq!(cc.retained[0] as usize, patch);
        assert_eq!(cc.retained[1] as usize, patch - 1);
        // Pair streams hold exactly the retained nonzero-weight products,
        // ascending pair index, masked/zero halves carrying weight 0.
        for o in [0usize, 1] {
            let s = cc.row_offsets[o] as usize;
            let idx_row = cc.channel_pair_rows(o);
            assert!(
                idx_row.windows(2).all(|p| p[0] < p[1]),
                "pair indices not ascending"
            );
            let wrow = &c0.weights[o * patch..(o + 1) * patch];
            for (j, &pi) in idx_row.iter().enumerate() {
                let (e0, e1) = (2 * pi, 2 * pi + 1);
                let want0 = if o == 1 && e0 == 2 { 0 } else { wrow[e0] };
                let want1 = if e1 >= patch || (o == 1 && e1 == 2) {
                    0
                } else {
                    wrow[e1]
                };
                assert_eq!(cc.w[2 * (s + j)], want0, "channel {o} entry {j} even");
                assert_eq!(cc.w[2 * (s + j) + 1], want1, "channel {o} entry {j} odd");
            }
            // Every nonzero retained weight appears in exactly one entry.
            let streamed: i64 = idx_row
                .iter()
                .enumerate()
                .map(|(j, _)| cc.w[2 * (s + j)] as i64 + cc.w[2 * (s + j) + 1] as i64)
                .sum();
            let want: i64 = (0..patch)
                .filter(|&i| !(o == 1 && i == 2))
                .map(|i| wrow[i] as i64)
                .sum();
            assert_eq!(streamed, want, "channel {o} weight sum");
        }
        // The masked product (channel 1, patch index 2) must not appear:
        // pair row 1's even half for channel 1 is forced to 0.
        let s1 = cc.row_offsets[1] as usize;
        for (j, &pi) in cc.channel_pair_rows(1).iter().enumerate() {
            if pi == 1 {
                assert_eq!(cc.w[2 * (s1 + j)], 0, "masked half-pair must be 0");
            }
        }
    }

    #[test]
    fn dense_stream_drops_zero_weights_only() {
        let (q, _) = quantized_micro(84);
        let c0 = q.conv(0);
        let patch = c0.patch_len();
        let cc = CompiledConv::dense(c0);
        assert!(cc.is_dense(patch));
        for o in 0..c0.geom.out_c {
            let wrow = &c0.weights[o * patch..(o + 1) * patch];
            // Entries exist exactly for pairs with at least one nonzero.
            let want_pairs: Vec<usize> = (0..patch.div_ceil(2))
                .filter(|&i| wrow[2 * i] != 0 || (2 * i + 1 < patch && wrow[2 * i + 1] != 0))
                .collect();
            assert_eq!(cc.channel_pair_rows(o), want_pairs, "channel {o}");
        }
    }

    #[test]
    fn out_stage_bit_exact_with_reference_requantize() {
        use crate::forward::clamp_out;
        let (q, _) = quantized_micro(83);
        let mut rng = StdRng::seed_from_u64(83);
        for k in 0..q.conv_indices().len() {
            let c = q.conv(k);
            let stage = OutStage::new(c);
            let (lo, hi) = c.act_bounds();
            let out_zp = c.out_qp.zero_point;
            // Edge accumulators plus a random sweep.
            let mut accs = vec![
                0,
                1,
                -1,
                i32::MAX,
                i32::MIN,
                i32::MAX - 1,
                i32::MIN + 1,
                1 << 30,
            ];
            for _ in 0..20_000 {
                accs.push(rng.gen_range(i32::MIN..i32::MAX));
                accs.push(rng.gen_range(-5_000_000i32..5_000_000));
            }
            for &a in &accs {
                assert_eq!(
                    stage.apply(a),
                    clamp_out(a, c, out_zp, lo, hi),
                    "conv {k}, acc {a}"
                );
            }
        }
    }

    #[test]
    fn retained_conv_macs_matches_bool_accounting() {
        let (q, _) = quantized_micro(81);
        let masks = random_masks(&q, 9, 4);
        let compiled = CompiledMasks::compile(&q, &masks);
        let dense: u64 = (0..q.conv_indices().len())
            .map(|k| q.conv(k).geom.macs())
            .sum();
        assert_eq!(
            compiled.retained_conv_macs(&q),
            dense - masks.skipped_macs(&q)
        );
    }
}
