//! An owned, scoped-dispatch thread pool for intra-batch parallel
//! execution.
//!
//! [`BatchPool`] holds `threads - 1` parked worker std-threads; the caller
//! participates as thread 0, so a pool of `threads = 1` spawns nothing and
//! [`BatchPool::run`] degenerates to a plain call. A run hands every
//! thread the same borrowed closure (classic scoped protocol: `run`
//! blocks until all workers finish, so the borrow outlives every use) and
//! each thread receives its **thread index** — the key into per-thread
//! scratch arenas, so no allocation or sharing happens inside a segment.
//! Work distribution happens *inside* the closure via a shared atomic
//! cursor over segment chunks (work-stealing: fast threads drain more
//! chunks), see [`crate::batch`].
//!
//! Dispatch is a generation-counted mutex/condvar handshake — no channels,
//! no queues, nothing vendored (rayon stays the fallback idiom reference
//! only). Workers park between runs, so an idle pool costs nothing but
//! memory; the pool joins its workers on drop.
//!
//! # The unsafe boundary
//!
//! This module is one of the few opted back into `unsafe_code` (the
//! workspace denies it; see DESIGN.md, "Static verification and the
//! unsafe boundary"). Exactly two obligations are discharged here, each
//! marked `SAFETY:` at its site and checked by `repo_lint`:
//!
//! 1. **`Job: Send`** — a raw `*const dyn Fn(usize) + Sync` crosses into
//!    worker threads. Sound because the pointee is `Sync` (the `run`
//!    signature demands it) and `run` blocks on `active == 0` before
//!    returning, so the pointer never dangles while a worker can
//!    dereference it.
//! 2. **The lifetime-erasing `transmute` in [`BatchPool::run`]** — the
//!    borrowed closure is smuggled as `&'static`. Sound for the same
//!    reason: erasure is strictly scoped to one generation, and the
//!    generation cannot outlive the borrow because `run` does not return
//!    (and the `run_guard` admits no next dispatch) until every worker
//!    has decremented `active`.
//!
//! Both arguments hinge on the generation handshake being lossless: a
//! worker that ever skipped a generation could still hold the *previous*
//! generation's erased pointer while `run` believes the dispatch drained.
//! `worker_loop` therefore asserts `generation == seen + 1` at every job
//! pickup, and the `sanitizers` CI job runs this module's stress tests
//! under ThreadSanitizer.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A closure pointer smuggled to the workers for one run. Lifetime-erased:
/// `run` blocks until every worker has finished calling it, so the
/// borrowed closure outlives every dereference.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (asserted at construction in `run`) and
// `run` keeps it alive for the whole dispatch.
unsafe impl Send for Job {}

struct PoolState {
    /// Incremented per dispatch; workers run a job exactly once per
    /// generation.
    generation: u64,
    job: Option<Job>,
    /// Workers still executing the current generation's job.
    active: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new generation (or shutdown).
    dispatch: Condvar,
    /// The caller waits here for `active` to drain.
    done: Condvar,
}

/// Owned pool of parked worker threads for intra-batch execution; see the
/// module docs. Cheap to share (`Arc`) across the scratches of one serve
/// worker; a `run` is exclusive (guarded), so concurrent callers serialize
/// rather than corrupt a dispatch.
pub struct BatchPool {
    shared: Arc<PoolShared>,
    /// Serializes dispatches from different threads sharing one pool.
    run_guard: Mutex<()>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl BatchPool {
    /// A pool executing with `threads` total threads (the caller counts as
    /// thread 0; `threads - 1` workers are spawned). `threads` is clamped
    /// to at least 1.
    pub fn new(threads: usize) -> Arc<Self> {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            dispatch: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("batch-pool-{tid}"))
                    .spawn(move || worker_loop(&shared, tid))
                    .expect("spawn batch-pool worker")
            })
            .collect();
        Arc::new(Self {
            shared,
            run_guard: Mutex::new(()),
            threads,
            workers,
        })
    }

    /// Total execution threads (caller included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` once on every thread of the pool — `f(0)` on the calling
    /// thread, `f(tid)` for `tid in 1..threads` on the workers — and block
    /// until all invocations return. The closure partitions its own work
    /// (shared atomic cursor over chunks).
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.threads == 1 {
            f(0);
            return;
        }
        let _guard = self.run_guard.lock().expect("pool run guard");
        // SAFETY: erase the borrow's lifetime. The erased reference is
        // dropped before `run` returns (we block on `active == 0` below),
        // so workers never outlive the closure.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let job = Job(f_static as *const _);
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.generation += 1;
            st.job = Some(job);
            st.active = self.threads - 1;
            self.shared.dispatch.notify_all();
        }
        f(0);
        let mut st = self.shared.state.lock().expect("pool state");
        while st.active > 0 {
            st = self.shared.done.wait(st).expect("pool done wait");
        }
        st.job = None;
    }
}

impl Drop for BatchPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.shutdown = true;
            self.shared.dispatch.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, tid: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > seen {
                    // Lossless handshake: `run` holds the guard and blocks
                    // until `active` drains, so no worker can lag by more
                    // than one generation. A gap here would mean a worker
                    // could still be running a *previous* job whose erased
                    // borrow `run` already considers dead — the exact
                    // use-after-free the module contract rules out.
                    assert_eq!(
                        st.generation,
                        seen + 1,
                        "pool worker skipped a dispatch generation"
                    );
                    seen = st.generation;
                    break st.job.expect("job set with generation");
                }
                st = shared.dispatch.wait(st).expect("pool dispatch wait");
            }
        };
        // SAFETY: `run` blocks until `active` drains, keeping the closure
        // alive and `Sync` for this call.
        unsafe { (*job.0)(tid) };
        let mut st = shared.state.lock().expect("pool state");
        st.active -= 1;
        if st.active == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = BatchPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(&|tid| {
            assert_eq!(tid, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn every_thread_runs_exactly_once_per_dispatch() {
        let pool = BatchPool::new(4);
        for _ in 0..50 {
            let per_thread = [const { AtomicUsize::new(0) }; 4];
            pool.run(&|tid| {
                per_thread[tid].fetch_add(1, Ordering::Relaxed);
            });
            for (tid, c) in per_thread.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "thread {tid}");
            }
        }
    }

    #[test]
    fn chunk_cursor_covers_all_work() {
        let pool = BatchPool::new(3);
        let n = 1000usize;
        let cursor = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        pool.run(&|_tid| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = BatchPool::new(0);
        assert_eq!(pool.threads(), 1);
        pool.run(&|_| {});
    }

    /// Rapid dispatch/teardown churn: every iteration builds a fresh pool,
    /// fires a burst of generations through it, and drops it — the
    /// spawn → park → dispatch → join edges where a lost wakeup or a
    /// skipped generation would trip the handshake assert. Run under
    /// ThreadSanitizer in the `sanitizers` CI job.
    #[test]
    fn stress_rebuild_and_burst_dispatch() {
        for round in 0..25 {
            let pool = BatchPool::new(2 + round % 3);
            let hits = AtomicUsize::new(0);
            for _ in 0..40 {
                pool.run(&|_tid| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            assert_eq!(hits.load(Ordering::Relaxed), 40 * pool.threads());
        }
    }

    /// Concurrent callers sharing one pool must serialize through the run
    /// guard: dispatches interleave but never tear (each run sees every
    /// thread exactly once), and the total count conserves.
    #[test]
    fn stress_concurrent_callers_serialize() {
        let pool = BatchPool::new(3);
        let hits = AtomicUsize::new(0);
        const CALLERS: usize = 4;
        const RUNS: usize = 25;
        std::thread::scope(|s| {
            for _ in 0..CALLERS {
                s.spawn(|| {
                    for _ in 0..RUNS {
                        let per_thread = [const { AtomicUsize::new(0) }; 3];
                        pool.run(&|tid| {
                            per_thread[tid].fetch_add(1, Ordering::Relaxed);
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                        for (tid, c) in per_thread.iter().enumerate() {
                            assert_eq!(c.load(Ordering::Relaxed), 1, "torn dispatch: thread {tid}");
                        }
                    }
                });
            }
        });
        assert_eq!(
            hits.load(Ordering::Relaxed),
            CALLERS * RUNS * pool.threads()
        );
    }
}
