//! Activation-range calibration over a dataset subset.
//!
//! Section II-C: the framework captures "the input values' distribution from
//! a small portion of the dataset". PTQ needs the same pass to fix
//! activation scales; both reuse the f32 model's intermediate activations.

use cifar10sim::Dataset;
use rayon::prelude::*;
use tinynn::layers::Layer;
use tinynn::Sequential;

/// Min/max range of every layer-boundary tensor.
///
/// `ranges[0]` is the model input; `ranges[i + 1]` is the output of
/// `model.layers[i]` (post-activation, since ReLU is a separate layer whose
/// output *is* the boundary used by the following layer).
#[derive(Debug, Clone)]
pub struct ActivationRanges {
    /// `(min, max)` per boundary.
    pub ranges: Vec<(f32, f32)>,
}

/// Run `model` over (a prefix of) `calib` and record per-boundary ranges.
///
/// Deterministic: per-image ranges are combined with `min`/`max`, which is
/// order-independent, so the rayon parallelism cannot change results.
pub fn calibrate_ranges(model: &Sequential, calib: &Dataset) -> ActivationRanges {
    assert!(!calib.is_empty(), "calibration set must be non-empty");
    let n_bounds = model.layers.len() + 1;
    let per_image: Vec<Vec<(f32, f32)>> = (0..calib.len())
        .into_par_iter()
        .map(|i| {
            let x = calib.image(i);
            let mut bounds = Vec::with_capacity(n_bounds);
            bounds.push(slice_range(x));
            let mut act = x.to_vec();
            let mut stashes: Vec<Vec<f32>> = Vec::new();
            for l in &model.layers {
                act = match l {
                    Layer::Conv(c) => c.forward(&act).0,
                    Layer::Pool(p) => p.forward(&act).0,
                    Layer::GlobalAvgPool(g) => g.forward(&act),
                    Layer::Relu(_) => {
                        let mut a = act;
                        for v in a.iter_mut() {
                            if *v < 0.0 {
                                *v = 0.0;
                            }
                        }
                        a
                    }
                    Layer::Dense(d) => d.forward(&act),
                    Layer::Stash(_) => {
                        stashes.push(act.clone());
                        act
                    }
                    Layer::Add(_) => {
                        let s = stashes.pop().expect("Add without matching Stash");
                        let mut a = act;
                        for (v, sv) in a.iter_mut().zip(&s) {
                            *v += sv;
                        }
                        a
                    }
                };
                bounds.push(slice_range(&act));
            }
            bounds
        })
        .collect();

    let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); n_bounds];
    for img in &per_image {
        for (r, &(lo, hi)) in ranges.iter_mut().zip(img.iter()) {
            r.0 = r.0.min(lo);
            r.1 = r.1.max(hi);
        }
    }
    ActivationRanges { ranges }
}

fn slice_range(xs: &[f32]) -> (f32, f32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in xs {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cifar10sim::DatasetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tinytensor::Shape4;

    fn model() -> Sequential {
        let mut rng = StdRng::seed_from_u64(1);
        Sequential::new("m", Shape4::nhwc(1, 32, 32, 3))
            .conv_relu(4, 3, &mut rng)
            .maxpool()
            .dense(10, true, &mut rng)
    }

    #[test]
    fn ranges_cover_all_boundaries() {
        let data = cifar10sim::generate(DatasetConfig::tiny(1));
        let m = model();
        let r = calibrate_ranges(&m, &data.train.take(16));
        assert_eq!(r.ranges.len(), m.layers.len() + 1);
        // input range within [0,1]
        assert!(r.ranges[0].0 >= 0.0 && r.ranges[0].1 <= 1.0);
        // post-relu boundary non-negative (conv is layer 0, relu layer 1)
        assert!(r.ranges[2].0 >= 0.0);
        for &(lo, hi) in &r.ranges {
            assert!(lo <= hi);
        }
    }

    #[test]
    fn more_images_widen_or_keep_ranges() {
        let data = cifar10sim::generate(DatasetConfig::tiny(2));
        let m = model();
        let small = calibrate_ranges(&m, &data.train.take(4));
        let big = calibrate_ranges(&m, &data.train.take(32));
        for (s, b) in small.ranges.iter().zip(&big.ranges) {
            assert!(b.0 <= s.0 + 1e-6);
            assert!(b.1 >= s.1 - 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_calibration_rejected() {
        let data = cifar10sim::generate(DatasetConfig::tiny(3));
        let m = model();
        calibrate_ranges(&m, &data.train.take(0));
    }
}
