//! Batch-major compiled execution: pack `B` images through the pair-stream
//! kernels in one pass — monolithically or **resumably**, from per-layer
//! checkpoints.
//!
//! The per-image compiled path ([`QuantModel::forward_compiled_scratch`])
//! re-traverses every layer's weight streams, requantization parameters and
//! output stages once **per image**. The DSE evaluates hundreds of eval
//! images per design and a serving front-end pushes thousands of requests
//! per second through a deployed design, so this module amortizes all
//! per-layer stream state across a batch:
//!
//! * **Batched pair columns** — image `b` occupies lanes
//!   `[b·positions, (b+1)·positions)` of every pair row, so one stream
//!   entry broadcasts its weight pair across `B × positions` contiguous
//!   lanes and the conv kernel ([`crate::compiled`]) is *identical* to the
//!   per-image one, just with `lanes = B · positions`.
//! * **Batch-planar activations** between conv/pool stages — plane
//!   `c·B + b` holds channel `c` of image `b`, so conv stores, pooling and
//!   the next conv's column fill all touch contiguous planes, and pooling a
//!   batch is literally the planar pool over `C·B` planes.
//! * **Per-image unbatch only at the logits** — dense layers (and the
//!   final planar→NHWC conversion of the plan's logits segment) gather one
//!   image at a time; everything before them never materializes a
//!   per-image view.
//!
//! Traversal is plan-driven ([`crate::plan::ExecPlan`]): the monolithic
//! driver is the [`crate::plan::ExecBackend`] impl `BatchBackend`.
//! Activation layout per segment is a static plan property, so the old
//! runtime layout tracking is gone.
//!
//! ## Tiled (and optionally parallel) conv execution
//!
//! Conv segments execute in **image-group tiles** ([`tile_images`]): fill
//! one tile's pair columns into a tile-local buffer, MAC it into its lane
//! window of the batch-planar output, repeat. The per-tile column working
//! set is capped at [`TILE_BYTES`] regardless of batch size — growing the
//! batch without tiling grew every pair row's stride *and* put the whole
//! batch's columns between fill and MAC, which is why batch 12 ran slower
//! per image than batch 3 before this existed (DESIGN.md §"Intra-batch
//! parallelism and stream encoding").
//!
//! With [`BatchScratch::set_pool`], tiles additionally become the unit of
//! **intra-batch parallelism**: pool threads steal tiles from a shared
//! cursor and work out of per-thread arenas ([`ParArena`]), so nothing
//! allocates or shares inside a segment. Pool segments chunk planes, Add
//! segments chunk elements/channels; GAP, dense and logits tails stay
//! serial (per-image small). Each output element's accumulation walks the
//! same stream in the same order regardless of threads, so parallel
//! execution is bit-exact, enforced by tests here and the workspace
//! proptest `tests/parallel_batch.rs`.
//!
//! ## Resumable execution ([`BatchCheckpoint`])
//!
//! Only convolution layers carry a significance threshold τ; pooling and
//! dense layers are τ-independent. The activations entering conv ordinal
//! `k` therefore depend only on the τ choices of convs `0..k` — which is
//! exactly what a prefix-sharing DSE exploits. [`QuantModel::batch_start`]
//! captures the batch state before the first conv, and
//! [`QuantModel::batch_advance_into`] executes **one checkpoint segment**
//! of the plan ([`crate::plan::ExecPlan::advance_range`]: the conv under a
//! chosen compiled stream, plus every following non-conv segment up to the
//! next conv or through the logits epilogue) from one checkpoint into
//! another. A DSE walking a τ trie keeps a small stack of checkpoints and
//! re-runs only the segments below the first layer whose τ changed.
//! [`QuantModel::batch_fill_conv_cols`] additionally splits out the
//! τ-independent im2col/pair-interleave of a segment so siblings in the
//! trie share one column fill.
//!
//! Every layout change is value-preserving and the MAC/requantize
//! arithmetic is lane-for-lane the per-image kernel's, so batched results
//! — monolithic *and* checkpoint-resumed, for any split points — are
//! **bit-exact** with the per-image compiled path (and hence the
//! boolean-mask reference) for every batch size, including ragged final
//! batches — enforced by unit tests here and the workspace proptests
//! `tests/batched_forward.rs` and `tests/prefix_forward.rs`.

use crate::compiled::{
    conv_forward_pairs_window, fill_centered_t, gap_forward_planar, planar_to_nhwc_pitched,
    pool_forward_planar, simd_level, CompiledConv, CompiledMasks,
};
use crate::forward::{argmax_i8, dense_forward, gap_forward_nhwc, pool_forward};
use crate::plan::{
    AddSegment, ConvSegment, DenseSegment, ExecBackend, ExecPlan, GapSegment, LogitsSegment,
    PoolSegment,
};
use crate::pool::BatchPool;
use crate::qmodel::{QAdd, QConv, QuantModel};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tinytensor::im2col::{fill_im2col_pairs_planar_pitched, interleave_pair_rows};

/// Column working-set budget of one image-group tile (i16 pair-column
/// bytes). A quarter of the builder Xeon's 1 MB L2: the tile's columns,
/// the weight streams and the output rows all stay resident while the MAC
/// loop walks every output channel. Growing the batch no longer grows the
/// per-tile working set — the fix for the batch-12 < batch-3 regression.
/// Chosen by interleaved A/B sweep (96K–384K): 256K is the largest budget
/// whose batch-12 per-image throughput stays ≥ batch 3, while small
/// batches still run un-tiled (see DESIGN.md "Intra-batch parallelism and
/// stream encoding"). `ATAMAN_TILE_BYTES` overrides for A/B runs (`0` =
/// no tiling: one whole-batch tile, the pre-tiling executor shape).
const TILE_BYTES: usize = 256 * 1024;

/// The effective tile budget (`TILE_BYTES` unless overridden by the
/// `ATAMAN_TILE_BYTES` env var; `0` disables tiling).
fn tile_bytes() -> usize {
    static BYTES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BYTES.get_or_init(|| match std::env::var("ATAMAN_TILE_BYTES") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(0) => usize::MAX,
            Ok(n) => n,
            Err(_) => TILE_BYTES,
        },
        Err(_) => TILE_BYTES,
    })
}

/// Elementwise work below which a parallel dispatch costs more than it
/// saves (condvar wake + join ≈ a few µs ≈ tens of KB of byte traffic).
const MIN_PAR_ELEMS: usize = 8192;

/// Images per tile of a conv segment: enough images to fill `TILE_BYTES`
/// of pair columns, never more than the batch, and — when `threads`
/// execute — no more than an even share, so every thread gets work.
pub(crate) fn tile_images(
    pair_rows: usize,
    positions: usize,
    batch: usize,
    threads: usize,
) -> usize {
    let per_image = pair_rows * 2 * positions * std::mem::size_of::<i16>();
    let mut g = (tile_bytes() / per_image.max(1)).clamp(1, batch.max(1));
    if threads > 1 {
        g = g.min(batch.div_ceil(threads)).max(1);
    }
    g
}

/// Per-thread scratch arena for parallel segment execution — sized once
/// from the plan's extents ([`BatchScratch::set_pool`]) so nothing
/// allocates or shares inside a segment.
struct ParArena {
    /// NHWC staging rows for one image's column fill.
    rows: Vec<i16>,
    /// Tile-local pair-interleaved columns.
    pcolt: Vec<i16>,
    /// Lane accumulators for one tile.
    acc: Vec<i32>,
}

/// [`ParArena`] behind an [`UnsafeCell`] so the pool closure (a shared
/// `Fn`) can hand each thread *its own* arena mutably.
///
/// SAFETY: every access pattern indexes the arena slice by the pool's
/// thread index, which is unique per concurrent closure invocation, so no
/// two threads ever alias one arena.
struct ArenaCell(UnsafeCell<ParArena>);
unsafe impl Sync for ArenaCell {}

/// A raw output pointer that may cross into pool threads.
///
/// SAFETY: writers hold disjoint windows (tiles / plane chunks / element
/// ranges) of the pointee, so no two threads ever write the same element,
/// and the buffer outlives every dispatch (`pool.run` blocks) — see each
/// dispatch site.
#[derive(Clone, Copy)]
struct SendPtr(*mut i8);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// The pointer, via a whole-struct method so closures capture the
    /// (`Sync`) wrapper rather than the raw field.
    fn get(self) -> *mut i8 {
        self.0
    }
}

/// Reusable buffers for batched compiled forwards, sized once for a model
/// and a maximum batch size.
pub struct BatchScratch {
    max_batch: usize,
    /// The lowered execution plan every batched walker over this scratch
    /// follows — built at construction, like the dense streams.
    plan: ExecPlan,
    /// Ping-pong activation buffers, `max_batch ×` the largest activation.
    act_a: Vec<i8>,
    act_b: Vec<i8>,
    /// Natural transposed-row staging for one image's column fill.
    rows: Vec<i16>,
    /// Batched pair-interleaved columns (`max_batch ×` the largest layer).
    pcolt: Vec<i16>,
    /// Lane accumulators.
    acc: Vec<i32>,
    /// One image's NHWC staging at planar → dense boundaries.
    nhwc: Vec<i8>,
    /// Residual stash buffers, `max_batch ×` the slot length each, stored
    /// in whatever batch layout the producing segment emitted.
    stash: Vec<Vec<i8>>,
    /// τ-independent dense pair streams per conv ordinal (exact-layer
    /// dispatch through the same kernel; built at construction — this is
    /// what binds the scratch to its model).
    dense_streams: Vec<CompiledConv>,
    /// Intra-batch thread pool (opt-in via [`BatchScratch::set_pool`];
    /// `None` = single-thread execution, the default).
    pool: Option<Arc<BatchPool>>,
    /// One scratch arena per pool thread (empty without a pool).
    arenas: Vec<ArenaCell>,
}

impl BatchScratch {
    /// Scratch for batches of up to `max_batch` images of `model` —
    /// **bound to `model`**: the dense pair streams baked in here are that
    /// model's weights, so a scratch must not be reused across different
    /// models (build one per model instead).
    pub fn for_model(model: &QuantModel, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        let plan = ExecPlan::lower(model);
        let max_act = plan.max_act();
        let max_rows = plan.max_cols();
        let max_pcolt = plan.max_pair_colt();
        let max_positions = plan.max_positions();
        let stash: Vec<Vec<i8>> = plan
            .stash_lens()
            .iter()
            .map(|&l| vec![0; max_batch * l])
            .collect();
        Self {
            max_batch,
            plan,
            act_a: vec![0; max_batch * max_act],
            act_b: vec![0; max_batch * max_act],
            rows: vec![0; max_rows],
            pcolt: vec![0; max_batch * max_pcolt],
            acc: vec![0; (max_batch * max_positions).max(1)],
            nhwc: vec![0; max_act],
            stash,
            dense_streams: crate::compiled::dense_streams(model),
            pool: None,
            arenas: Vec::new(),
        }
    }

    /// Opt into intra-batch parallel segment execution on `pool` (or back
    /// out with `None`). Sizes one scratch arena per pool thread from the
    /// plan's conv extents, so parallel segments never allocate. The same
    /// `Arc`'d pool may back several scratches (dispatches serialize).
    pub fn set_pool(&mut self, pool: Option<Arc<BatchPool>>) {
        self.arenas.clear();
        if let Some(p) = &pool {
            let threads = p.threads();
            if threads > 1 {
                let rows_len = self.plan.max_cols();
                let (mut pcolt_len, mut acc_len) = (0usize, 1usize);
                for k in 0..self.plan.n_convs() {
                    let seg = self.plan.conv_segment(k);
                    // Upper bound over every runtime tiling: threads = 1
                    // and the full batch give the widest tile.
                    let g = tile_images(seg.pair_rows, seg.positions, self.max_batch, 1);
                    let tl = g * seg.positions;
                    pcolt_len = pcolt_len.max(seg.pair_rows * 2 * tl);
                    acc_len = acc_len.max(tl);
                }
                self.arenas = (0..threads)
                    .map(|_| {
                        ArenaCell(UnsafeCell::new(ParArena {
                            rows: vec![0; rows_len],
                            pcolt: vec![0; pcolt_len],
                            acc: vec![0; acc_len],
                        }))
                    })
                    .collect();
            }
        }
        self.pool = pool;
    }

    /// Threads intra-batch segments execute with (1 without a pool).
    pub fn intra_batch_threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.threads())
    }

    /// Largest batch this scratch can execute.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The execution plan this scratch was sized for.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Approximate heap bytes held by the scratch buffers (reporting).
    pub fn resident_bytes(&self) -> u64 {
        (self.act_a.len()
            + self.act_b.len()
            + 2 * self.rows.len()
            + 2 * self.pcolt.len()
            + 4 * self.acc.len()
            + self.nhwc.len()
            + self.stash.iter().map(Vec::len).sum::<usize>()) as u64
            + self
                .dense_streams
                .iter()
                .map(CompiledConv::resident_bytes)
                .sum::<u64>()
            + self
                .arenas
                .iter()
                .map(|a| {
                    // SAFETY: `&self` — no pool dispatch is live.
                    let a = unsafe { &*a.0.get() };
                    (2 * a.rows.len() + 2 * a.pcolt.len() + 4 * a.acc.len()) as u64
                })
                .sum::<u64>()
    }
}

/// The batched activation state after some prefix of the plan's segments —
/// the unit of reuse of the prefix-sharing DSE.
///
/// A checkpoint is always positioned either **before a conv segment** (the
/// next τ decision; the buffer layout there is a static plan property) or
/// **past the logits epilogue** (per-image logits ready for
/// [`QuantModel::batch_checkpoint_predictions_into`]). Produced by
/// [`QuantModel::batch_start_into`] and advanced one checkpoint segment at
/// a time by [`QuantModel::batch_advance_into`]. The buffer is reused
/// across `*_into` calls, so a pooled stack of checkpoints allocates only
/// on its first descent.
pub struct BatchCheckpoint {
    batch: usize,
    /// Conv ordinal of the next conv layer (the τ trie depth).
    conv_ordinal: usize,
    /// Per-image activation length of `act`.
    cur_len: usize,
    /// True once every segment (including the logits epilogue) ran.
    complete: bool,
    /// Activations, `batch × cur_len`; batch-planar between convs,
    /// per-image at the start and once complete (the plan knows which).
    act: Vec<i8>,
    /// Live residual stashes, one buffer per plan stash slot (`batch ×`
    /// slot length once recorded, empty before). Part of the resume state:
    /// a checkpoint taken between a stash and its Add must carry the
    /// stashed activations, and cloning a checkpoint's stashes is what lets
    /// sibling τ choices in the DSE trie share a prefix *through* a
    /// residual join.
    stashes: Vec<Vec<i8>>,
}

impl Default for BatchCheckpoint {
    fn default() -> Self {
        Self::empty()
    }
}

impl BatchCheckpoint {
    /// An unpositioned checkpoint (fill it via the `*_into` methods).
    pub fn empty() -> Self {
        Self {
            batch: 0,
            conv_ordinal: 0,
            cur_len: 0,
            complete: false,
            act: Vec::new(),
            stashes: Vec::new(),
        }
    }

    /// Images in this checkpoint's batch.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Conv ordinal the checkpoint is positioned before, or `None` once the
    /// whole plan (logits epilogue included) has run.
    pub fn next_conv_ordinal(&self) -> Option<usize> {
        (!self.complete).then_some(self.conv_ordinal)
    }

    /// True once every segment has run and `act` holds per-image logits.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Heap bytes held by the checkpoint's activation buffer and live
    /// stashes (memory-budget reporting for checkpoint stacks, like
    /// `BatchScratch::resident_bytes`).
    pub fn resident_bytes(&self) -> u64 {
        self.act.capacity() as u64
            + self
                .stashes
                .iter()
                .map(|s| s.capacity() as u64)
                .sum::<u64>()
    }
}

/// Residual join over a batch — the single join implementation every
/// compiled backend shares (`batch = 1` is the per-image case, where the
/// plane pitch collapses to `pos`). Same-layout operands add elementwise
/// (per-image NHWC stacking and batch-planar plane layout are both
/// position-for-position identical between the branches); a layout
/// mismatch index-maps the stash — per-image NHWC element `(b, p·ch + c)`
/// against batch-planar element `c·(B·pos) + b·pos + p`.
pub(crate) fn add_join_batched(
    a: &QAdd,
    seg: &AddSegment,
    batch: usize,
    lhs: &[i8],
    rhs: &[i8],
    dst: &mut [i8],
) {
    let n = batch * seg.len;
    debug_assert!(lhs.len() >= n && rhs.len() >= n && dst.len() >= n);
    match (seg.lhs_planar, seg.rhs_planar) {
        (false, false) | (true, true) => {
            for ((d, &l), &r) in dst[..n].iter_mut().zip(&lhs[..n]).zip(&rhs[..n]) {
                *d = a.apply(l, r);
            }
        }
        (false, true) => {
            let (pos, ch) = (seg.positions, seg.ch);
            let plane = batch * pos;
            for b in 0..batch {
                for c in 0..ch {
                    for p in 0..pos {
                        dst[c * plane + b * pos + p] =
                            a.apply(lhs[b * seg.len + p * ch + c], rhs[c * plane + b * pos + p]);
                    }
                }
            }
        }
        (true, false) => {
            let (pos, ch) = (seg.positions, seg.ch);
            let plane = batch * pos;
            for b in 0..batch {
                for p in 0..pos {
                    for c in 0..ch {
                        dst[b * seg.len + p * ch + c] =
                            a.apply(lhs[c * plane + b * pos + p], rhs[b * seg.len + p * ch + c]);
                    }
                }
            }
        }
    }
}

/// [`add_join_batched`] split across a pool: same-layout joins chunk the
/// element range, layout-mapping joins chunk the channel axis (each
/// channel's writes are injective and channel-disjoint in both layouts).
/// Per-element arithmetic is untouched, so the result is bit-exact with
/// the serial join.
fn add_join_batched_par(
    a: &QAdd,
    seg: &AddSegment,
    batch: usize,
    lhs: &[i8],
    rhs: &[i8],
    dst: &mut [i8],
    pool: &BatchPool,
) {
    let n = batch * seg.len;
    debug_assert!(lhs.len() >= n && rhs.len() >= n && dst.len() >= n);
    let threads = pool.threads();
    let out = SendPtr(dst.as_mut_ptr());
    match (seg.lhs_planar, seg.rhs_planar) {
        (false, false) | (true, true) => {
            let chunk = n.div_ceil(threads);
            pool.run(&|tid| {
                let lo = (tid * chunk).min(n);
                let hi = ((tid + 1) * chunk).min(n);
                for i in lo..hi {
                    // SAFETY: threads hold disjoint element ranges; `dst`
                    // outlives the dispatch.
                    unsafe { out.get().add(i).write(a.apply(lhs[i], rhs[i])) };
                }
            });
        }
        (false, true) => {
            let (pos, ch) = (seg.positions, seg.ch);
            let plane = batch * pos;
            let chunk = ch.div_ceil(threads);
            pool.run(&|tid| {
                let c_lo = (tid * chunk).min(ch);
                let c_hi = ((tid + 1) * chunk).min(ch);
                for c in c_lo..c_hi {
                    for b in 0..batch {
                        for p in 0..pos {
                            let pl = c * plane + b * pos + p;
                            let v = a.apply(lhs[b * seg.len + p * ch + c], rhs[pl]);
                            // SAFETY: plane-layout writes are disjoint
                            // across channel ranges.
                            unsafe { out.get().add(pl).write(v) };
                        }
                    }
                }
            });
        }
        (true, false) => {
            let (pos, ch) = (seg.positions, seg.ch);
            let plane = batch * pos;
            let chunk = ch.div_ceil(threads);
            pool.run(&|tid| {
                let c_lo = (tid * chunk).min(ch);
                let c_hi = ((tid + 1) * chunk).min(ch);
                for c in c_lo..c_hi {
                    for b in 0..batch {
                        for p in 0..pos {
                            let nh = b * seg.len + p * ch + c;
                            let v = a.apply(lhs[c * plane + b * pos + p], rhs[nh]);
                            // SAFETY: NHWC writes at stride `ch` are
                            // disjoint across channel ranges.
                            unsafe { out.get().add(nh).write(v) };
                        }
                    }
                }
            });
        }
    }
}

/// Fill conv `c`'s **full-batch** pair-interleaved columns from a batched
/// source activation buffer (`planar_in` per the plan's fill strategy) —
/// the τ-independent front half of a checkpoint segment, used by
/// [`QuantModel::batch_fill_conv_cols`] so trie siblings share one fill.
/// (In-segment fills go through the tile-local [`fill_tile_cols`]
/// instead.)
fn fill_conv_cols(
    c: &QConv,
    batch: usize,
    src: &[i8],
    cur_len: usize,
    planar_in: bool,
    rows: &mut [i16],
    pcolt: &mut [i16],
) {
    let positions = c.geom.out_positions();
    let patch = c.geom.patch_len();
    let lanes = batch * positions;
    for b in 0..batch {
        if planar_in {
            // Image b's channel planes sit batch planes apart starting
            // at plane b; fused fill writes pair rows direct.
            let in_pos = c.geom.in_h * c.geom.in_w;
            let ch = c.geom.in_c;
            let plane_pitch = batch * in_pos;
            let view = &src[b * in_pos..(ch - 1) * plane_pitch + b * in_pos + in_pos];
            let zp = c.in_qp.zero_point;
            let pad = c.centered_pad();
            fill_im2col_pairs_planar_pitched(
                view,
                &c.geom,
                zp as i16,
                pad,
                pcolt,
                lanes,
                b * positions,
                plane_pitch,
            );
        } else {
            let rows = &mut rows[..positions * patch];
            fill_centered_t(c, &src[b * cur_len..(b + 1) * cur_len], rows);
            interleave_pair_rows(rows, positions, patch, pcolt, lanes, b * positions);
        }
    }
}

/// Fill the pair-interleaved columns of images `[b_lo, b_hi)` of a conv
/// segment into a **tile-local** buffer (`(b_hi - b_lo) · positions`
/// lanes). Reads stay full-batch pitched (the source layout is fixed);
/// only the destination columns are tile-local, which is what keeps the
/// MAC working set batch-size-independent.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fill_tile_cols(
    c: &QConv,
    seg: &ConvSegment,
    batch: usize,
    src: &[i8],
    cur_len: usize,
    b_lo: usize,
    b_hi: usize,
    rows: &mut [i16],
    pcolt: &mut [i16],
) {
    let positions = seg.positions;
    let tile_lanes = (b_hi - b_lo) * positions;
    for b in b_lo..b_hi {
        if seg.planar_in {
            // Image b's channel planes sit batch planes apart starting at
            // plane b; fused fill writes pair rows direct.
            let in_pos = seg.geom.in_h * seg.geom.in_w;
            let ch = seg.geom.in_c;
            let plane_pitch = batch * in_pos;
            let view = &src[b * in_pos..(ch - 1) * plane_pitch + b * in_pos + in_pos];
            fill_im2col_pairs_planar_pitched(
                view,
                &c.geom,
                c.in_qp.zero_point as i16,
                c.centered_pad(),
                pcolt,
                tile_lanes,
                (b - b_lo) * positions,
                plane_pitch,
            );
        } else {
            let rows = &mut rows[..positions * seg.patch];
            fill_centered_t(c, &src[b * cur_len..(b + 1) * cur_len], rows);
            interleave_pair_rows(
                rows,
                positions,
                seg.patch,
                pcolt,
                tile_lanes,
                (b - b_lo) * positions,
            );
        }
    }
}

/// The tiled conv segment executor every batched driver shares: walk the
/// batch in image-group tiles ([`tile_images`]) — fill a tile's columns,
/// MAC the tile through [`conv_forward_pairs_window`] into its lane window
/// of the batch-planar output, move on. With `prefilled` columns (cached
/// conv 0 / sibling-shared trie fills) the fill half is skipped and tiles
/// become pure MAC lane-windows over the shared buffer.
///
/// With a pool ([`BatchScratch::set_pool`]), tiles are the parallel work
/// unit: every thread drains a shared atomic tile cursor (work-stealing —
/// fast threads take more tiles) into its own arena. Tiles write disjoint
/// lane windows of `dst`, and each output element's accumulation walks the
/// same stream in the same order as single-thread execution, so parallel
/// results are **bit-exact**, not merely close.
///
/// `#[inline(always)]`: the fill + MAC must inline into the segment
/// executors — routing them through an outlined helper measured ~10% off
/// batched throughput (re-confirmed by interleaved A/B when this function
/// first landed outlined; the PR 3 / PR 5 lesson).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn conv_exec_tiled(
    c: &QConv,
    cc: &CompiledConv,
    seg: &ConvSegment,
    batch: usize,
    src: &[i8],
    cur_len: usize,
    prefilled: Option<&[i16]>,
    par: Option<(&BatchPool, &[ArenaCell])>,
    rows: &mut [i16],
    pcolt: &mut [i16],
    acc: &mut [i32],
    dst: &mut [i8],
) {
    let positions = seg.positions;
    let lanes = batch * positions;
    let level = simd_level();
    debug_assert!(dst.len() >= seg.geom.out_c * lanes);
    if let Some(pc) = prefilled {
        assert_eq!(pc.len(), seg.pair_rows * 2 * lanes, "prefilled length");
    }
    let threads = par.map_or(1, |(p, _)| p.threads());
    let g = tile_images(seg.pair_rows, positions, batch, threads);
    let n_tiles = batch.div_ceil(g);

    if let Some((pool, arenas)) = par.filter(|_| n_tiles > 1 && threads > 1) {
        let cursor = AtomicUsize::new(0);
        let out = SendPtr(dst.as_mut_ptr());
        pool.run(&|tid| {
            // SAFETY: `tid` is unique per concurrent invocation — this
            // thread is the arena's only user.
            let arena = unsafe { &mut *arenas[tid].0.get() };
            loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= n_tiles {
                    break;
                }
                let (b_lo, b_hi) = (t * g, ((t + 1) * g).min(batch));
                let (w_lo, w_hi) = (b_lo * positions, b_hi * positions);
                // SAFETY: (both arms) tiles hold disjoint `[w_lo, w_hi)`
                // lane windows at shift 0, so writes are disjoint; `dst`
                // outlives the dispatch (`pool.run` blocks).
                match prefilled {
                    Some(pc) => unsafe {
                        conv_forward_pairs_window(
                            c,
                            cc,
                            pc,
                            lanes,
                            w_lo,
                            w_hi,
                            &mut arena.acc,
                            out.get(),
                            lanes,
                            w_lo,
                            level,
                        );
                    },
                    None => {
                        let n_t = seg.pair_rows * 2 * (w_hi - w_lo);
                        fill_tile_cols(
                            c,
                            seg,
                            batch,
                            src,
                            cur_len,
                            b_lo,
                            b_hi,
                            &mut arena.rows,
                            &mut arena.pcolt[..n_t],
                        );
                        // SAFETY: disjoint tile windows, per the argument
                        // at the top of the match.
                        unsafe {
                            conv_forward_pairs_window(
                                c,
                                cc,
                                &arena.pcolt[..n_t],
                                w_hi - w_lo,
                                0,
                                w_hi - w_lo,
                                &mut arena.acc,
                                out.get(),
                                lanes,
                                w_lo,
                                level,
                            );
                        }
                    }
                }
            }
        });
        return;
    }

    match prefilled {
        Some(pc) => {
            // SAFETY: whole-buffer window, sole writer.
            unsafe {
                conv_forward_pairs_window(
                    c,
                    cc,
                    pc,
                    lanes,
                    0,
                    lanes,
                    acc,
                    dst.as_mut_ptr(),
                    lanes,
                    0,
                    level,
                );
            }
        }
        None => {
            let mut b_lo = 0;
            while b_lo < batch {
                let b_hi = (b_lo + g).min(batch);
                let (w_lo, w_hi) = (b_lo * positions, b_hi * positions);
                let n_t = seg.pair_rows * 2 * (w_hi - w_lo);
                fill_tile_cols(
                    c,
                    seg,
                    batch,
                    src,
                    cur_len,
                    b_lo,
                    b_hi,
                    rows,
                    &mut pcolt[..n_t],
                );
                // SAFETY: sequential tiles, disjoint lane windows, sole
                // writer.
                unsafe {
                    conv_forward_pairs_window(
                        c,
                        cc,
                        &pcolt[..n_t],
                        w_hi - w_lo,
                        0,
                        w_hi - w_lo,
                        acc,
                        dst.as_mut_ptr(),
                        lanes,
                        w_lo,
                        level,
                    );
                }
                b_lo = b_hi;
            }
        }
    }
}

/// Per-conv-ordinal stream dispatch view (`None` = exact layer through the
/// dense stream): the borrowed form the batched drivers consume, buildable
/// from a [`CompiledMasks`] or from independently owned (e.g. memoized,
/// `Arc`-shared) [`CompiledConv`]s without cloning them into a mask set.
fn mask_view(masks: Option<&CompiledMasks>, n_convs: usize) -> Vec<Option<&CompiledConv>> {
    match masks {
        Some(m) => m.per_conv.iter().map(Option::as_ref).collect(),
        None => vec![None; n_convs],
    }
}

/// The monolithic batch-major backend: the serving / DSE hot path. One
/// instance walks the whole plan; every executor's inner loop is the
/// pre-plan hand-rolled walker's, verbatim.
struct BatchBackend<'r, 'm> {
    model: &'m QuantModel,
    batch: usize,
    streams: &'r [Option<&'r CompiledConv>],
    conv0_pcolt: Option<&'r [i16]>,
    dense_streams: &'r [CompiledConv],
    act_a: &'r mut Vec<i8>,
    act_b: &'r mut Vec<i8>,
    rows: &'r mut Vec<i16>,
    pcolt: &'r mut Vec<i16>,
    acc: &'r mut Vec<i32>,
    nhwc: &'r mut Vec<i8>,
    /// Residual stash buffers (batch layout as produced).
    stash: &'r mut Vec<Vec<i8>>,
    /// Intra-batch pool + per-thread arenas when parallel execution is on.
    par: Option<(&'r BatchPool, &'r [ArenaCell])>,
    /// Per-image activation length of the current buffer.
    cur_len: usize,
    in_a: bool,
}

impl BatchBackend<'_, '_> {
    #[inline(always)]
    fn advance(&mut self, out_len: usize) {
        self.cur_len = out_len;
        self.in_a = !self.in_a;
    }
}

impl ExecBackend for BatchBackend<'_, '_> {
    #[inline]
    fn conv(&mut self, seg: &ConvSegment) {
        let c = self.model.conv_at(seg.layer_idx);
        let batch = self.batch;
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        let prefilled: Option<&[i16]> = match (seg.ordinal, self.conv0_pcolt) {
            (0, Some(cached)) => Some(cached),
            _ => None,
        };
        let cc = self.streams[seg.ordinal].unwrap_or(&self.dense_streams[seg.ordinal]);
        conv_exec_tiled(
            c,
            cc,
            seg,
            batch,
            src,
            self.cur_len,
            prefilled,
            self.par,
            self.rows,
            self.pcolt,
            self.acc,
            &mut dst[..batch * seg.out_len],
        );
        self.advance(seg.out_len);
    }

    #[inline]
    fn pool(&mut self, seg: &PoolSegment) {
        let batch = self.batch;
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        if seg.planar_in {
            // A batch is C·B independent planes; pooling each plane
            // preserves the (c, b) → plane mapping.
            let planes = seg.c * batch;
            let in_plane = seg.in_h * seg.in_w;
            let out_plane = (seg.in_h / 2) * (seg.in_w / 2);
            match self.par.filter(|(p, _)| {
                p.threads() > 1 && batch * self.cur_len >= MIN_PAR_ELEMS && planes >= 2
            }) {
                Some((pool, _)) => {
                    // Plane chunks are independent (the pool is per-plane):
                    // thread t takes planes [t·chunk, (t+1)·chunk) — the
                    // (c, b) → plane mapping is untouched.
                    let chunk = planes.div_ceil(pool.threads());
                    let out = SendPtr(dst.as_mut_ptr());
                    pool.run(&|tid| {
                        let lo = (tid * chunk).min(planes);
                        let hi = ((tid + 1) * chunk).min(planes);
                        if lo >= hi {
                            return;
                        }
                        // SAFETY: chunks write disjoint output planes
                        // `[lo·out_plane, hi·out_plane)`; `dst` outlives
                        // the dispatch.
                        let dst_chunk = unsafe {
                            std::slice::from_raw_parts_mut(
                                out.get().add(lo * out_plane),
                                (hi - lo) * out_plane,
                            )
                        };
                        pool_forward_planar(
                            seg.in_h,
                            seg.in_w,
                            hi - lo,
                            &src[lo * in_plane..hi * in_plane],
                            dst_chunk,
                        );
                    });
                }
                None => pool_forward_planar(
                    seg.in_h,
                    seg.in_w,
                    planes,
                    &src[..batch * self.cur_len],
                    &mut dst[..batch * seg.out_len],
                ),
            }
        } else {
            for b in 0..batch {
                pool_forward(
                    seg.in_h,
                    seg.in_w,
                    seg.c,
                    &src[b * self.cur_len..(b + 1) * self.cur_len],
                    &mut dst[b * seg.out_len..(b + 1) * seg.out_len],
                );
            }
        }
        self.advance(seg.out_len);
    }

    #[inline]
    fn global_avg_pool(&mut self, seg: &GapSegment) {
        let batch = self.batch;
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        if seg.planar_in {
            // Image b's planes sit batch planes apart starting at plane b;
            // the output is a per-image channel vector.
            let plane_pitch = batch * seg.positions;
            for b in 0..batch {
                gap_forward_planar(
                    seg.positions,
                    seg.c,
                    plane_pitch,
                    &src[b * seg.positions..],
                    &mut dst[b * seg.out_len..(b + 1) * seg.out_len],
                );
            }
        } else {
            for b in 0..batch {
                gap_forward_nhwc(
                    seg.positions,
                    seg.c,
                    &src[b * self.cur_len..(b + 1) * self.cur_len],
                    &mut dst[b * seg.out_len..(b + 1) * seg.out_len],
                );
            }
        }
        self.advance(seg.out_len);
    }

    #[inline]
    fn dense(&mut self, seg: &DenseSegment) {
        let batch = self.batch;
        let d = self.model.dense_at(seg.layer_idx);
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        if let Some((positions, ch)) = seg.planar_in {
            // Per-image unbatch: gather image b's planes into NHWC, then
            // the (small) dense tail per image.
            for b in 0..batch {
                planar_to_nhwc_pitched(
                    &src[b * positions..],
                    positions,
                    ch,
                    batch * positions,
                    &mut self.nhwc[..self.cur_len],
                );
                dense_forward(
                    d,
                    &self.nhwc[..self.cur_len],
                    &mut dst[b * seg.out_dim..(b + 1) * seg.out_dim],
                );
            }
        } else {
            for b in 0..batch {
                dense_forward(
                    d,
                    &src[b * self.cur_len..(b + 1) * self.cur_len],
                    &mut dst[b * seg.out_dim..(b + 1) * seg.out_dim],
                );
            }
        }
        self.advance(seg.out_dim);
    }

    #[inline(never)]
    fn add(&mut self, seg: &AddSegment) {
        let a = self.model.add_at(seg.layer_idx);
        let batch = self.batch;
        let n = batch * seg.len;
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        match self
            .par
            .filter(|(p, _)| p.threads() > 1 && n >= MIN_PAR_ELEMS)
        {
            Some((pool, _)) => add_join_batched_par(
                a,
                seg,
                batch,
                &self.stash[seg.slot][..n],
                &src[..n],
                &mut dst[..n],
                pool,
            ),
            None => add_join_batched(
                a,
                seg,
                batch,
                &self.stash[seg.slot][..n],
                &src[..n],
                &mut dst[..n],
            ),
        }
        self.advance(seg.len);
    }

    #[inline(never)]
    fn stash(&mut self, slot: usize, len: usize) {
        let n = self.batch * len;
        let src = if self.in_a {
            &self.act_a[..n]
        } else {
            &self.act_b[..n]
        };
        self.stash[slot][..n].copy_from_slice(src);
    }

    #[inline]
    fn logits(&mut self, seg: &LogitsSegment) {
        // A model ending on a conv/pool leaves the buffer batch-planar:
        // unbatch so callers always see per-image NHWC logits.
        if let Some((positions, ch)) = seg.planar {
            let batch = self.batch;
            let (src, dst) = if self.in_a {
                (&self.act_a[..], &mut self.act_b[..])
            } else {
                (&self.act_b[..], &mut self.act_a[..])
            };
            for b in 0..batch {
                // Split borrow: nhwc is a distinct field from act_a/act_b.
                planar_to_nhwc_pitched(
                    &src[b * positions..],
                    positions,
                    ch,
                    batch * positions,
                    &mut self.nhwc[..seg.out_len],
                );
                dst[b * seg.out_len..(b + 1) * seg.out_len]
                    .copy_from_slice(&self.nhwc[..seg.out_len]);
            }
            self.in_a = !self.in_a;
        }
    }
}

/// The resumable backend: executes the non-conv segments of one checkpoint
/// range against a [`BatchCheckpoint`]'s activation buffer, staging through
/// the scratch. These segments are cheap (pool/GAP/dense) next to the conv
/// kernels on either side.
struct CkptBackend<'r, 'm> {
    model: &'m QuantModel,
    out: &'r mut BatchCheckpoint,
    /// Staging buffer (the scratch's `act_a`).
    stage: &'r mut Vec<i8>,
    /// One image's NHWC staging.
    nhwc: &'r mut Vec<i8>,
}

impl CkptBackend<'_, '_> {
    /// Adopt the staged result as the checkpoint's activation state.
    #[inline]
    fn commit(&mut self, out_len: usize) {
        let batch = self.out.batch;
        self.out.act.clear();
        self.out
            .act
            .extend_from_slice(&self.stage[..batch * out_len]);
        self.out.cur_len = out_len;
    }
}

impl ExecBackend for CkptBackend<'_, '_> {
    fn conv(&mut self, _seg: &ConvSegment) {
        unreachable!("checkpoint ranges execute their conv via batch_advance_into");
    }

    fn pool(&mut self, seg: &PoolSegment) {
        let batch = self.out.batch;
        if seg.planar_in {
            pool_forward_planar(
                seg.in_h,
                seg.in_w,
                seg.c * batch,
                &self.out.act[..batch * self.out.cur_len],
                &mut self.stage[..batch * seg.out_len],
            );
        } else {
            for b in 0..batch {
                pool_forward(
                    seg.in_h,
                    seg.in_w,
                    seg.c,
                    &self.out.act[b * self.out.cur_len..(b + 1) * self.out.cur_len],
                    &mut self.stage[b * seg.out_len..(b + 1) * seg.out_len],
                );
            }
        }
        self.commit(seg.out_len);
    }

    fn global_avg_pool(&mut self, seg: &GapSegment) {
        let batch = self.out.batch;
        if seg.planar_in {
            let plane_pitch = batch * seg.positions;
            for b in 0..batch {
                gap_forward_planar(
                    seg.positions,
                    seg.c,
                    plane_pitch,
                    &self.out.act[b * seg.positions..],
                    &mut self.stage[b * seg.out_len..(b + 1) * seg.out_len],
                );
            }
        } else {
            for b in 0..batch {
                gap_forward_nhwc(
                    seg.positions,
                    seg.c,
                    &self.out.act[b * self.out.cur_len..(b + 1) * self.out.cur_len],
                    &mut self.stage[b * seg.out_len..(b + 1) * seg.out_len],
                );
            }
        }
        self.commit(seg.out_len);
    }

    fn dense(&mut self, seg: &DenseSegment) {
        let batch = self.out.batch;
        let d = self.model.dense_at(seg.layer_idx);
        if let Some((positions, ch)) = seg.planar_in {
            for b in 0..batch {
                planar_to_nhwc_pitched(
                    &self.out.act[b * positions..],
                    positions,
                    ch,
                    batch * positions,
                    &mut self.nhwc[..self.out.cur_len],
                );
                dense_forward(
                    d,
                    &self.nhwc[..self.out.cur_len],
                    &mut self.stage[b * seg.out_dim..(b + 1) * seg.out_dim],
                );
            }
        } else {
            for b in 0..batch {
                dense_forward(
                    d,
                    &self.out.act[b * self.out.cur_len..(b + 1) * self.out.cur_len],
                    &mut self.stage[b * seg.out_dim..(b + 1) * seg.out_dim],
                );
            }
        }
        self.commit(seg.out_dim);
    }

    #[inline(never)]
    fn add(&mut self, seg: &AddSegment) {
        let a = self.model.add_at(seg.layer_idx);
        let batch = self.out.batch;
        let n = batch * seg.len;
        add_join_batched(
            a,
            seg,
            batch,
            &self.out.stashes[seg.slot][..n],
            &self.out.act[..n],
            &mut self.stage[..n],
        );
        self.commit(seg.len);
        // Each slot is consumed by exactly one Add (LIFO pairing, asserted
        // at lowering), and sibling advances re-read the *ancestor*
        // checkpoint — free the dead buffer so descendant checkpoints stop
        // cloning it and resident_bytes stops counting its capacity.
        self.out.stashes[seg.slot] = Vec::new();
    }

    #[inline(never)]
    fn stash(&mut self, slot: usize, len: usize) {
        // Record the checkpoint's current activation as resume state: the
        // stash must survive into (clones of) every descendant checkpoint
        // until its Add consumes it.
        let n = self.out.batch * len;
        let BatchCheckpoint { act, stashes, .. } = &mut *self.out;
        stashes[slot].clear();
        stashes[slot].extend_from_slice(&act[..n]);
    }

    fn logits(&mut self, seg: &LogitsSegment) {
        // Plan end: unbatch a planar tail so `act` holds per-image logits.
        if let Some((positions, ch)) = seg.planar {
            let batch = self.out.batch;
            for b in 0..batch {
                planar_to_nhwc_pitched(
                    &self.out.act[b * positions..],
                    positions,
                    ch,
                    batch * positions,
                    &mut self.nhwc[..seg.out_len],
                );
                self.stage[b * seg.out_len..(b + 1) * seg.out_len]
                    .copy_from_slice(&self.nhwc[..seg.out_len]);
            }
            let n = batch * seg.out_len;
            self.out.act.clear();
            self.out.act.extend_from_slice(&self.stage[..n]);
        }
        self.out.complete = true;
    }
}

impl QuantModel {
    /// Batched pair-interleaved first-conv columns for `batch` stacked
    /// quantized inputs — the batch-major analogue of
    /// [`QuantModel::conv0_pair_cols`], τ-independent and therefore
    /// precomputable once per eval set.
    ///
    /// Returns `None` when the model does not start with a convolution.
    pub fn conv0_pair_cols_batch(&self, qinputs: &[i8], batch: usize) -> Option<Vec<i16>> {
        let c = match self.layers.first() {
            Some(crate::qmodel::QLayer::Conv(c)) => c,
            _ => return None,
        };
        let in_len = self.input_shape.item_len();
        assert_eq!(qinputs.len(), batch * in_len, "input length mismatch");
        let positions = c.geom.out_positions();
        let patch = c.patch_len();
        let lanes = batch * positions;
        let mut rows = vec![0i16; positions * patch];
        let mut pcolt = vec![0i16; patch.div_ceil(2) * 2 * lanes];
        for b in 0..batch {
            fill_centered_t(c, &qinputs[b * in_len..(b + 1) * in_len], &mut rows);
            interleave_pair_rows(&rows, positions, patch, &mut pcolt, lanes, b * positions);
        }
        Some(pcolt)
    }

    /// Batched forward with compiled masks: `batch` quantized inputs stacked
    /// back-to-back in `qinputs`, logits stacked back-to-back in the return
    /// value (`batch × out_len`, NHWC per image).
    ///
    /// `conv0_pcolt` optionally supplies this batch's precomputed
    /// first-conv pair columns ([`QuantModel::conv0_pair_cols_batch`]).
    /// Bit-exact with running [`QuantModel::forward_compiled_scratch`] per
    /// image.
    pub fn forward_compiled_batch_scratch(
        &self,
        qinputs: &[i8],
        batch: usize,
        conv0_pcolt: Option<&[i16]>,
        masks: Option<&CompiledMasks>,
        s: &mut BatchScratch,
    ) -> Vec<i8> {
        let view = mask_view(masks, s.dense_streams.len());
        let (in_a, per_image) =
            self.forward_compiled_batch_core(qinputs, batch, conv0_pcolt, &view, s);
        let fin = if in_a {
            &s.act_a[..batch * per_image]
        } else {
            &s.act_b[..batch * per_image]
        };
        fin.to_vec()
    }

    /// Predicted class per image of a batch, reusing caller scratch —
    /// allocation-free beyond the returned vector.
    pub fn predict_compiled_batch_scratch(
        &self,
        qinputs: &[i8],
        batch: usize,
        conv0_pcolt: Option<&[i16]>,
        masks: Option<&CompiledMasks>,
        s: &mut BatchScratch,
    ) -> Vec<usize> {
        let view = mask_view(masks, s.dense_streams.len());
        self.predict_compiled_batch_view(qinputs, batch, conv0_pcolt, &view, s)
    }

    /// [`QuantModel::predict_compiled_batch_scratch`] over a borrowed
    /// per-ordinal stream view (`streams[k] = None` = conv ordinal `k`
    /// exact) — lets callers dispatch memoized `Arc`-shared streams without
    /// assembling an owned [`CompiledMasks`] per design.
    pub fn predict_compiled_batch_view(
        &self,
        qinputs: &[i8],
        batch: usize,
        conv0_pcolt: Option<&[i16]>,
        streams: &[Option<&CompiledConv>],
        s: &mut BatchScratch,
    ) -> Vec<usize> {
        let (in_a, per_image) =
            self.forward_compiled_batch_core(qinputs, batch, conv0_pcolt, streams, s);
        let fin = if in_a {
            &s.act_a[..batch * per_image]
        } else {
            &s.act_b[..batch * per_image]
        };
        (0..batch)
            .map(|b| argmax_i8(&fin[b * per_image..(b + 1) * per_image]))
            .collect()
    }

    /// Batched driver writing into scratch; returns which ping-pong buffer
    /// holds the logits and the per-image logits length.
    fn forward_compiled_batch_core(
        &self,
        qinputs: &[i8],
        batch: usize,
        conv0_pcolt: Option<&[i16]>,
        streams: &[Option<&CompiledConv>],
        s: &mut BatchScratch,
    ) -> (bool, usize) {
        assert!(batch >= 1, "empty batch");
        assert!(
            batch <= s.max_batch,
            "batch {batch} exceeds scratch capacity {}",
            s.max_batch
        );
        debug_assert_eq!(
            s.dense_streams.len(),
            self.conv_indices().len(),
            "BatchScratch reused across models (it is bound to the model it \
             was constructed for)"
        );
        assert_eq!(streams.len(), s.dense_streams.len(), "stream arity");
        let in_len = self.input_shape.item_len();
        assert_eq!(qinputs.len(), batch * in_len, "input length mismatch");

        s.act_a[..batch * in_len].copy_from_slice(qinputs);
        let BatchScratch {
            plan,
            act_a,
            act_b,
            rows,
            pcolt,
            acc,
            nhwc,
            stash,
            dense_streams,
            pool,
            arenas,
            ..
        } = s;
        let par = pool
            .as_deref()
            .filter(|p| p.threads() > 1)
            .map(|p| (p, arenas.as_slice()));
        let mut backend = BatchBackend {
            model: self,
            batch,
            streams,
            conv0_pcolt,
            dense_streams,
            act_a,
            act_b,
            rows,
            pcolt,
            acc,
            nhwc,
            stash,
            par,
            cur_len: in_len,
            in_a: true,
        };
        plan.execute(&mut backend);
        let in_a = backend.in_a;
        (in_a, s.plan.logits_len())
    }

    /// Begin a resumable batched forward: capture `qinputs` and run the
    /// plan's leading non-conv segments, leaving `out` positioned before
    /// conv ordinal 0 (or complete, for a conv-free model).
    pub fn batch_start_into(
        &self,
        qinputs: &[i8],
        batch: usize,
        s: &mut BatchScratch,
        out: &mut BatchCheckpoint,
    ) {
        assert!(batch >= 1, "empty batch");
        assert!(
            batch <= s.max_batch,
            "batch {batch} exceeds scratch capacity {}",
            s.max_batch
        );
        let in_len = self.input_shape.item_len();
        assert_eq!(qinputs.len(), batch * in_len, "input length mismatch");
        out.batch = batch;
        out.conv_ordinal = 0;
        out.cur_len = in_len;
        out.complete = false;
        out.act.clear();
        out.act.extend_from_slice(qinputs);
        // One (initially empty) stash buffer per plan slot; the walker
        // records input stashes and leading-segment side-outputs below.
        out.stashes.resize_with(s.plan.n_stash_slots(), Vec::new);
        for st in &mut out.stashes {
            st.clear();
        }
        let BatchScratch {
            plan, act_a, nhwc, ..
        } = s;
        let mut backend = CkptBackend {
            model: self,
            out,
            stage: act_a,
            nhwc,
        };
        plan.execute_range(plan.leading_range(), &mut backend);
    }

    /// Allocating convenience over [`QuantModel::batch_start_into`].
    pub fn batch_start(
        &self,
        qinputs: &[i8],
        batch: usize,
        s: &mut BatchScratch,
    ) -> BatchCheckpoint {
        let mut out = BatchCheckpoint::empty();
        self.batch_start_into(qinputs, batch, s, &mut out);
        out
    }

    /// Fill the batched pair-interleaved columns of the conv segment `ckpt`
    /// is positioned before — the τ-independent half of the segment, so a
    /// trie traversal fills once per node and shares the columns across all
    /// sibling τ choices via [`QuantModel::batch_advance_into`].
    pub fn batch_fill_conv_cols(
        &self,
        ckpt: &BatchCheckpoint,
        s: &mut BatchScratch,
        out: &mut Vec<i16>,
    ) {
        assert!(!ckpt.complete, "checkpoint already past the final layer");
        let seg = s.plan.conv_segment(ckpt.conv_ordinal);
        let c = self.conv_at(seg.layer_idx);
        let lanes = ckpt.batch * seg.positions;
        let n = seg.pair_rows * 2 * lanes;
        let planar_in = seg.planar_in;
        out.resize(n, 0);
        fill_conv_cols(
            c,
            ckpt.batch,
            &ckpt.act,
            ckpt.cur_len,
            planar_in,
            &mut s.rows,
            &mut out[..],
        );
    }

    /// Advance one checkpoint segment of the plan: run the conv segment
    /// `ckpt` is positioned before under `stream` (`None` = exact,
    /// dense-stream dispatch), then every following non-conv segment up to
    /// the next conv or through the logits epilogue, writing the resulting
    /// state into `out`.
    ///
    /// `prefilled` optionally supplies this segment's pair columns
    /// ([`QuantModel::batch_fill_conv_cols`], or the eval cache's conv-0
    /// columns at ordinal 0); when `None` the columns are filled here.
    /// Bit-exact with the monolithic batched forward for every split.
    pub fn batch_advance_into(
        &self,
        ckpt: &BatchCheckpoint,
        stream: Option<&CompiledConv>,
        prefilled: Option<&[i16]>,
        s: &mut BatchScratch,
        out: &mut BatchCheckpoint,
    ) {
        assert!(!ckpt.complete, "checkpoint already past the final layer");
        let batch = ckpt.batch;
        assert!(
            batch <= s.max_batch,
            "batch {batch} exceeds scratch capacity {}",
            s.max_batch
        );
        debug_assert_eq!(
            s.dense_streams.len(),
            self.conv_indices().len(),
            "BatchScratch reused across models"
        );
        let range = s.plan.advance_range(ckpt.conv_ordinal);
        let seg = s.plan.conv_segment(ckpt.conv_ordinal).clone();
        let c = self.conv_at(seg.layer_idx);
        out.batch = batch;
        // Live stashes travel with the resume state: clone from the source
        // so the source checkpoint stays reusable for sibling τ choices
        // (prefixes share *through* a residual join).
        out.stashes.resize_with(ckpt.stashes.len(), Vec::new);
        for (dst, src) in out.stashes.iter_mut().zip(&ckpt.stashes) {
            dst.clear();
            dst.extend_from_slice(src);
        }
        out.act.resize(batch * seg.out_len, 0);
        {
            // The conv half of the segment runs tiled (and, with a pool,
            // parallel) exactly like the monolithic driver; the sequential
            // cut is *at* the checkpoint boundary, after the join below.
            let BatchScratch {
                rows,
                pcolt,
                acc,
                dense_streams,
                pool,
                arenas,
                ..
            } = &mut *s;
            let cc = stream.unwrap_or(&dense_streams[ckpt.conv_ordinal]);
            let par = pool
                .as_deref()
                .filter(|p| p.threads() > 1)
                .map(|p| (p, arenas.as_slice()));
            conv_exec_tiled(
                c,
                cc,
                &seg,
                batch,
                &ckpt.act,
                ckpt.cur_len,
                prefilled,
                par,
                rows,
                pcolt,
                acc,
                &mut out.act[..],
            );
        }
        out.cur_len = seg.out_len;
        out.conv_ordinal = ckpt.conv_ordinal + 1;
        out.complete = false;
        // The conv's own stash side-outputs (the walker only drives the
        // segments *after* the conv here).
        for &slot in &seg.stash_slots {
            out.stashes[slot].clear();
            out.stashes[slot].extend_from_slice(&out.act[..batch * seg.out_len]);
        }
        let BatchScratch {
            plan, act_a, nhwc, ..
        } = s;
        let mut backend = CkptBackend {
            model: self,
            out,
            stage: act_a,
            nhwc,
        };
        plan.execute_range(range.start + 1..range.end, &mut backend);
    }

    /// Predicted class per image of a **complete** checkpoint, appended
    /// into `preds` (cleared first) — allocation-free at steady state.
    pub fn batch_checkpoint_predictions_into(
        &self,
        ckpt: &BatchCheckpoint,
        preds: &mut Vec<usize>,
    ) {
        assert!(ckpt.complete, "checkpoint has layers left to run");
        preds.clear();
        preds.extend(
            (0..ckpt.batch).map(|b| argmax_i8(&ckpt.act[b * ckpt.cur_len..(b + 1) * ckpt.cur_len])),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::calibrate_ranges;
    use crate::forward::{ForwardScratch, SkipMaskSet};
    use crate::qmodel::quantize_model;
    use cifar10sim::DatasetConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn quantized_micro(seed: u64) -> (QuantModel, cifar10sim::SyntheticCifar) {
        let data = cifar10sim::generate(DatasetConfig::tiny(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        let m = tinynn::Sequential::new("bm", tinytensor::Shape4::nhwc(1, 32, 32, 3))
            .conv_relu(4, 3, &mut rng)
            .maxpool()
            .conv_relu(6, 3, &mut rng)
            .maxpool()
            .dense(10, true, &mut rng);
        let ranges = calibrate_ranges(&m, &data.train.take(8));
        (quantize_model(&m, &ranges), data)
    }

    fn random_masks(q: &QuantModel, seed: u64, density_mod: u64) -> SkipMaskSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = q.conv_indices().len();
        let mut masks = SkipMaskSet::none(n);
        for k in 0..n {
            let c = q.conv(k);
            let len = c.geom.out_c * c.patch_len();
            masks.per_conv[k] = Some(
                (0..len)
                    .map(|_| rng.gen_range(0u64..density_mod) == 0)
                    .collect(),
            );
        }
        masks
    }

    fn stacked_qinputs(q: &QuantModel, data: &cifar10sim::SyntheticCifar, n: usize) -> Vec<i8> {
        let mut flat = Vec::new();
        for i in 0..n {
            flat.extend(q.quantize_input(data.test.image(i)));
        }
        flat
    }

    #[test]
    fn batched_forward_bit_exact_with_per_image_all_batch_sizes() {
        let (q, data) = quantized_micro(301);
        let masks = random_masks(&q, 7, 3);
        let compiled = CompiledMasks::compile(&q, &masks);
        let mut per_image = ForwardScratch::for_model(&q);
        let mut batch_scratch = BatchScratch::for_model(&q, 8);
        for batch in 1..=8usize {
            let flat = stacked_qinputs(&q, &data, batch);
            let got = q.forward_compiled_batch_scratch(
                &flat,
                batch,
                None,
                Some(&compiled),
                &mut batch_scratch,
            );
            let in_len = q.input_shape.item_len();
            for b in 0..batch {
                let want = q.forward_compiled_scratch(
                    &flat[b * in_len..(b + 1) * in_len],
                    None,
                    Some(&compiled),
                    &mut per_image,
                );
                let out_len = want.len();
                assert_eq!(
                    &got[b * out_len..(b + 1) * out_len],
                    &want[..],
                    "batch {batch}, image {b}"
                );
            }
        }
    }

    #[test]
    fn batched_conv0_cache_and_predictions_bit_exact() {
        let (q, data) = quantized_micro(302);
        let masks = random_masks(&q, 11, 4);
        let compiled = CompiledMasks::compile(&q, &masks);
        let mut per_image = ForwardScratch::for_model(&q);
        let mut bs = BatchScratch::for_model(&q, 5);
        let in_len = q.input_shape.item_len();
        // Ragged batch (5 then 3) with the cached conv0 pair columns.
        for batch in [5usize, 3] {
            let flat = stacked_qinputs(&q, &data, batch);
            let pcolt = q.conv0_pair_cols_batch(&flat, batch).expect("conv first");
            let preds = q.predict_compiled_batch_scratch(
                &flat,
                batch,
                Some(&pcolt),
                Some(&compiled),
                &mut bs,
            );
            for (b, &pred) in preds.iter().enumerate() {
                let want = q.predict_compiled_scratch(
                    &flat[b * in_len..(b + 1) * in_len],
                    None,
                    Some(&compiled),
                    &mut per_image,
                );
                assert_eq!(pred, want, "batch {batch}, image {b}");
            }
        }
    }

    #[test]
    fn batched_exact_path_matches_reference() {
        let (q, data) = quantized_micro(303);
        let mut bs = BatchScratch::for_model(&q, 4);
        let flat = stacked_qinputs(&q, &data, 4);
        let got = q.forward_compiled_batch_scratch(&flat, 4, None, None, &mut bs);
        let in_len = q.input_shape.item_len();
        for b in 0..4 {
            let want = q.forward_quantized(&flat[b * in_len..(b + 1) * in_len], None);
            let out_len = want.len();
            assert_eq!(&got[b * out_len..(b + 1) * out_len], &want[..], "image {b}");
        }
    }

    #[test]
    fn checkpoint_chain_bit_exact_with_monolithic() {
        let (q, data) = quantized_micro(306);
        let masks = random_masks(&q, 13, 3);
        let compiled = CompiledMasks::compile(&q, &masks);
        let mut bs = BatchScratch::for_model(&q, 5);
        for batch in [1usize, 4, 5] {
            let flat = stacked_qinputs(&q, &data, batch);
            let want =
                q.predict_compiled_batch_scratch(&flat, batch, None, Some(&compiled), &mut bs);
            // Segment-by-segment with prefilled sibling-shared columns.
            let mut cur = q.batch_start(&flat, batch, &mut bs);
            let mut next = BatchCheckpoint::empty();
            let mut cols = Vec::new();
            while let Some(k) = cur.next_conv_ordinal() {
                q.batch_fill_conv_cols(&cur, &mut bs, &mut cols);
                q.batch_advance_into(
                    &cur,
                    compiled.per_conv[k].as_ref(),
                    Some(&cols),
                    &mut bs,
                    &mut next,
                );
                std::mem::swap(&mut cur, &mut next);
            }
            assert!(cur.is_complete());
            let mut preds = Vec::new();
            q.batch_checkpoint_predictions_into(&cur, &mut preds);
            assert_eq!(preds, want, "batch {batch}");
            assert!(cur.resident_bytes() > 0);
        }
    }

    #[test]
    fn checkpoint_resume_shares_prefix_across_suffixes() {
        // Two designs agreeing on conv 0: advance conv 0 once, then branch.
        let (q, data) = quantized_micro(307);
        let masks_a = random_masks(&q, 21, 3);
        let mut masks_b = masks_a.clone();
        masks_b.per_conv[1] = random_masks(&q, 22, 2).per_conv[1].clone();
        let ca = CompiledMasks::compile(&q, &masks_a);
        let cb = CompiledMasks::compile(&q, &masks_b);
        let batch = 4;
        let flat = stacked_qinputs(&q, &data, batch);
        let mut bs = BatchScratch::for_model(&q, batch);

        let start = q.batch_start(&flat, batch, &mut bs);
        let mut shared = BatchCheckpoint::empty();
        q.batch_advance_into(&start, ca.per_conv[0].as_ref(), None, &mut bs, &mut shared);
        let mut leaf = BatchCheckpoint::empty();
        let mut preds = Vec::new();
        for (cm, label) in [(&ca, "a"), (&cb, "b")] {
            q.batch_advance_into(&shared, cm.per_conv[1].as_ref(), None, &mut bs, &mut leaf);
            assert!(leaf.is_complete());
            q.batch_checkpoint_predictions_into(&leaf, &mut preds);
            let want = q.predict_compiled_batch_scratch(&flat, batch, None, Some(cm), &mut bs);
            assert_eq!(preds, want, "design {label}");
        }
    }

    #[test]
    fn parallel_batched_forward_bit_exact_with_serial() {
        let (q, data) = quantized_micro(310);
        let masks = random_masks(&q, 17, 3);
        let compiled = CompiledMasks::compile(&q, &masks);
        let mut serial = BatchScratch::for_model(&q, 8);
        for threads in [2usize, 4] {
            let mut par = BatchScratch::for_model(&q, 8);
            par.set_pool(Some(BatchPool::new(threads)));
            assert_eq!(par.intra_batch_threads(), threads);
            for batch in [1usize, 3, 5, 8] {
                let flat = stacked_qinputs(&q, &data, batch);
                let want = q.forward_compiled_batch_scratch(
                    &flat,
                    batch,
                    None,
                    Some(&compiled),
                    &mut serial,
                );
                let got =
                    q.forward_compiled_batch_scratch(&flat, batch, None, Some(&compiled), &mut par);
                assert_eq!(got, want, "threads {threads}, batch {batch}");
            }
        }
    }

    #[test]
    fn parallel_checkpoint_chain_bit_exact_with_serial() {
        let (q, data) = quantized_micro(311);
        let masks = random_masks(&q, 19, 3);
        let compiled = CompiledMasks::compile(&q, &masks);
        let batch = 6;
        let flat = stacked_qinputs(&q, &data, batch);
        let mut serial = BatchScratch::for_model(&q, batch);
        let want =
            q.predict_compiled_batch_scratch(&flat, batch, None, Some(&compiled), &mut serial);
        let mut bs = BatchScratch::for_model(&q, batch);
        bs.set_pool(Some(BatchPool::new(3)));
        let mut cur = q.batch_start(&flat, batch, &mut bs);
        let mut next = BatchCheckpoint::empty();
        let mut cols = Vec::new();
        while let Some(k) = cur.next_conv_ordinal() {
            // Alternate prefilled (lane-window parallel MAC) and in-segment
            // tile fills.
            let prefilled = if k % 2 == 0 {
                q.batch_fill_conv_cols(&cur, &mut bs, &mut cols);
                Some(&cols[..])
            } else {
                None
            };
            q.batch_advance_into(
                &cur,
                compiled.per_conv[k].as_ref(),
                prefilled,
                &mut bs,
                &mut next,
            );
            std::mem::swap(&mut cur, &mut next);
        }
        assert!(cur.is_complete());
        let mut preds = Vec::new();
        q.batch_checkpoint_predictions_into(&cur, &mut preds);
        assert_eq!(preds, want);
    }

    #[test]
    fn set_pool_back_to_none_restores_serial_path() {
        let (q, data) = quantized_micro(312);
        let mut bs = BatchScratch::for_model(&q, 4);
        bs.set_pool(Some(BatchPool::new(2)));
        bs.set_pool(None);
        assert_eq!(bs.intra_batch_threads(), 1);
        let flat = stacked_qinputs(&q, &data, 4);
        let got = q.forward_compiled_batch_scratch(&flat, 4, None, None, &mut bs);
        let in_len = q.input_shape.item_len();
        for b in 0..4 {
            let want = q.forward_quantized(&flat[b * in_len..(b + 1) * in_len], None);
            let out_len = want.len();
            assert_eq!(&got[b * out_len..(b + 1) * out_len], &want[..], "image {b}");
        }
    }

    #[test]
    fn scratch_reports_capacity_and_bytes() {
        let (q, _) = quantized_micro(304);
        let bs = BatchScratch::for_model(&q, 6);
        assert_eq!(bs.max_batch(), 6);
        assert!(bs.resident_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "exceeds scratch capacity")]
    fn oversized_batch_is_rejected() {
        let (q, data) = quantized_micro(305);
        let mut bs = BatchScratch::for_model(&q, 2);
        let flat = stacked_qinputs(&q, &data, 3);
        let _ = q.forward_compiled_batch_scratch(&flat, 3, None, None, &mut bs);
    }
}
