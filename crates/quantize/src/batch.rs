//! Batch-major compiled execution: pack `B` images through the pair-stream
//! kernels in one pass.
//!
//! The per-image compiled path ([`QuantModel::forward_compiled_scratch`])
//! re-traverses every layer's weight streams, requantization parameters and
//! output stages once **per image**. The DSE evaluates hundreds of eval
//! images per design and a serving front-end pushes thousands of requests
//! per second through a deployed design, so this module amortizes all
//! per-layer stream state across a batch:
//!
//! * **Batched pair columns** — image `b` occupies lanes
//!   `[b·positions, (b+1)·positions)` of every pair row, so one stream
//!   entry broadcasts its weight pair across `B × positions` contiguous
//!   lanes and the conv kernel ([`crate::compiled`]) is *identical* to the
//!   per-image one, just with `lanes = B · positions`.
//! * **Batch-planar activations** between conv/pool stages — plane
//!   `c·B + b` holds channel `c` of image `b`, so conv stores, pooling and
//!   the next conv's column fill all touch contiguous planes, and pooling a
//!   batch is literally the planar pool over `C·B` planes.
//! * **Per-image unbatch only at the logits** — dense layers (and final
//!   planar→NHWC conversion) gather one image at a time; everything before
//!   them never materializes a per-image view.
//!
//! Every layout change is value-preserving and the MAC/requantize
//! arithmetic is lane-for-lane the per-image kernel's, so batched results
//! are **bit-exact** with the per-image compiled path (and hence the
//! boolean-mask reference) for every batch size, including ragged final
//! batches — enforced by unit tests here and the workspace proptest
//! `tests/batched_forward.rs`.

use crate::compiled::{
    conv_forward_pairs, fill_centered_t, planar_to_nhwc_pitched, pool_forward_planar, CompiledConv,
    CompiledMasks,
};
use crate::forward::{argmax_i8, dense_forward, pool_forward};
use crate::qmodel::{QLayer, QuantModel};
use tinytensor::im2col::{fill_im2col_pairs_planar_pitched, interleave_pair_rows};

/// Reusable buffers for batched compiled forwards, sized once for a model
/// and a maximum batch size.
pub struct BatchScratch {
    max_batch: usize,
    /// Ping-pong activation buffers, `max_batch ×` the largest activation.
    act_a: Vec<i8>,
    act_b: Vec<i8>,
    /// Natural transposed-row staging for one image's column fill.
    rows: Vec<i16>,
    /// Batched pair-interleaved columns (`max_batch ×` the largest layer).
    pcolt: Vec<i16>,
    /// Lane accumulators.
    acc: Vec<i32>,
    /// One image's NHWC staging at planar → dense boundaries.
    nhwc: Vec<i8>,
    /// τ-independent dense pair streams per conv ordinal (exact-layer
    /// dispatch through the same kernel; built at construction — this is
    /// what binds the scratch to its model).
    dense_streams: Vec<CompiledConv>,
}

impl BatchScratch {
    /// Scratch for batches of up to `max_batch` images of `model` —
    /// **bound to `model`**: the dense pair streams baked in here are that
    /// model's weights, so a scratch must not be reused across different
    /// models (build one per model instead).
    pub fn for_model(model: &QuantModel, max_batch: usize) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        let max_act = model.activation_sizes().into_iter().max().unwrap_or(0);
        let max_rows = model.max_im2col_bytes() as usize;
        let max_pcolt = model.max_pair_colt_elems();
        let max_positions = model.max_conv_positions();
        Self {
            max_batch,
            act_a: vec![0; max_batch * max_act],
            act_b: vec![0; max_batch * max_act],
            rows: vec![0; max_rows],
            pcolt: vec![0; max_batch * max_pcolt],
            acc: vec![0; (max_batch * max_positions).max(1)],
            nhwc: vec![0; max_act],
            dense_streams: crate::compiled::dense_streams(model),
        }
    }

    /// Largest batch this scratch can execute.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Approximate heap bytes held by the scratch buffers (reporting).
    pub fn resident_bytes(&self) -> u64 {
        (self.act_a.len()
            + self.act_b.len()
            + 2 * self.rows.len()
            + 2 * self.pcolt.len()
            + 4 * self.acc.len()
            + self.nhwc.len()) as u64
            + self
                .dense_streams
                .iter()
                .map(CompiledConv::resident_bytes)
                .sum::<u64>()
    }
}

/// Layout of the current batched activation buffer.
enum Layout {
    /// `batch` back-to-back per-image buffers (NHWC or dense vectors).
    PerImage,
    /// Batch-planar: plane `c·batch + b` of `positions` elements.
    BatchPlanar {
        /// Positions per image plane.
        positions: usize,
        /// Channels per image.
        ch: usize,
    },
}

impl QuantModel {
    /// Batched pair-interleaved first-conv columns for `batch` stacked
    /// quantized inputs — the batch-major analogue of
    /// [`QuantModel::conv0_pair_cols`], τ-independent and therefore
    /// precomputable once per eval set.
    ///
    /// Returns `None` when the model does not start with a convolution.
    pub fn conv0_pair_cols_batch(&self, qinputs: &[i8], batch: usize) -> Option<Vec<i16>> {
        let c = match self.layers.first() {
            Some(QLayer::Conv(c)) => c,
            _ => return None,
        };
        let in_len = self.input_shape.item_len();
        assert_eq!(qinputs.len(), batch * in_len, "input length mismatch");
        let positions = c.geom.out_positions();
        let patch = c.patch_len();
        let lanes = batch * positions;
        let mut rows = vec![0i16; positions * patch];
        let mut pcolt = vec![0i16; patch.div_ceil(2) * 2 * lanes];
        for b in 0..batch {
            fill_centered_t(c, &qinputs[b * in_len..(b + 1) * in_len], &mut rows);
            interleave_pair_rows(&rows, positions, patch, &mut pcolt, lanes, b * positions);
        }
        Some(pcolt)
    }

    /// Batched forward with compiled masks: `batch` quantized inputs stacked
    /// back-to-back in `qinputs`, logits stacked back-to-back in the return
    /// value (`batch × out_len`, NHWC per image).
    ///
    /// `conv0_pcolt` optionally supplies this batch's precomputed
    /// first-conv pair columns ([`QuantModel::conv0_pair_cols_batch`]).
    /// Bit-exact with running [`QuantModel::forward_compiled_scratch`] per
    /// image.
    pub fn forward_compiled_batch_scratch(
        &self,
        qinputs: &[i8],
        batch: usize,
        conv0_pcolt: Option<&[i16]>,
        masks: Option<&CompiledMasks>,
        s: &mut BatchScratch,
    ) -> Vec<i8> {
        let (in_a, per_image) =
            self.forward_compiled_batch_core(qinputs, batch, conv0_pcolt, masks, s);
        let fin = if in_a {
            &s.act_a[..batch * per_image]
        } else {
            &s.act_b[..batch * per_image]
        };
        fin.to_vec()
    }

    /// Predicted class per image of a batch, reusing caller scratch —
    /// allocation-free beyond the returned vector.
    pub fn predict_compiled_batch_scratch(
        &self,
        qinputs: &[i8],
        batch: usize,
        conv0_pcolt: Option<&[i16]>,
        masks: Option<&CompiledMasks>,
        s: &mut BatchScratch,
    ) -> Vec<usize> {
        let (in_a, per_image) =
            self.forward_compiled_batch_core(qinputs, batch, conv0_pcolt, masks, s);
        let fin = if in_a {
            &s.act_a[..batch * per_image]
        } else {
            &s.act_b[..batch * per_image]
        };
        (0..batch)
            .map(|b| argmax_i8(&fin[b * per_image..(b + 1) * per_image]))
            .collect()
    }

    /// Batched driver writing into scratch; returns which ping-pong buffer
    /// holds the logits and the per-image logits length.
    fn forward_compiled_batch_core(
        &self,
        qinputs: &[i8],
        batch: usize,
        conv0_pcolt: Option<&[i16]>,
        masks: Option<&CompiledMasks>,
        s: &mut BatchScratch,
    ) -> (bool, usize) {
        assert!(batch >= 1, "empty batch");
        assert!(
            batch <= s.max_batch,
            "batch {batch} exceeds scratch capacity {}",
            s.max_batch
        );
        debug_assert_eq!(
            s.dense_streams.len(),
            self.conv_indices().len(),
            "BatchScratch reused across models (it is bound to the model it \
             was constructed for)"
        );
        let in_len = self.input_shape.item_len();
        assert_eq!(qinputs.len(), batch * in_len, "input length mismatch");

        let mut cur_len = in_len; // per image
        s.act_a[..batch * cur_len].copy_from_slice(qinputs);
        let mut conv_ordinal = 0usize;
        let mut in_a = true;
        let mut layout = Layout::PerImage;

        for layer in &self.layers {
            let out_len = layer.out_len(); // per image
            let (src, dst) = if in_a {
                (&s.act_a[..], &mut s.act_b[..])
            } else {
                (&s.act_b[..], &mut s.act_a[..])
            };
            match layer {
                QLayer::Conv(c) => {
                    let positions = c.geom.out_positions();
                    let patch = c.patch_len();
                    let lanes = batch * positions;
                    let n = patch.div_ceil(2) * 2 * lanes;
                    let pc: &[i16] = match (conv_ordinal, conv0_pcolt) {
                        (0, Some(cached)) => {
                            assert_eq!(cached.len(), n, "conv0 pair-column cache mismatch");
                            cached
                        }
                        _ => {
                            let pcolt = &mut s.pcolt[..n];
                            for b in 0..batch {
                                match layout {
                                    Layout::PerImage => {
                                        let rows = &mut s.rows[..positions * patch];
                                        fill_centered_t(
                                            c,
                                            &src[b * cur_len..(b + 1) * cur_len],
                                            rows,
                                        );
                                        interleave_pair_rows(
                                            rows,
                                            positions,
                                            patch,
                                            pcolt,
                                            lanes,
                                            b * positions,
                                        );
                                    }
                                    Layout::BatchPlanar {
                                        positions: in_pos,
                                        ch,
                                    } => {
                                        // Image b's channel planes sit batch
                                        // planes apart starting at plane b;
                                        // fused fill writes pair rows direct.
                                        let plane_pitch = batch * in_pos;
                                        let view = &src[b * in_pos
                                            ..(ch - 1) * plane_pitch + b * in_pos + in_pos];
                                        let zp = c.in_qp.zero_point;
                                        let pad = c.centered_pad();
                                        fill_im2col_pairs_planar_pitched(
                                            view,
                                            &c.geom,
                                            zp as i16,
                                            pad,
                                            pcolt,
                                            lanes,
                                            b * positions,
                                            plane_pitch,
                                        );
                                    }
                                }
                            }
                            &s.pcolt[..n]
                        }
                    };
                    let cc = masks
                        .and_then(|m| m.per_conv[conv_ordinal].as_ref())
                        .unwrap_or(&s.dense_streams[conv_ordinal]);
                    conv_forward_pairs(c, cc, pc, lanes, &mut s.acc, &mut dst[..batch * out_len]);
                    layout = Layout::BatchPlanar {
                        positions,
                        ch: c.geom.out_c,
                    };
                    conv_ordinal += 1;
                }
                QLayer::Pool(p) => match layout {
                    Layout::BatchPlanar { .. } => {
                        // A batch is C·B independent planes; pooling each
                        // plane preserves the (c, b) → plane mapping.
                        pool_forward_planar(
                            p.in_h,
                            p.in_w,
                            p.c * batch,
                            &src[..batch * cur_len],
                            &mut dst[..batch * out_len],
                        );
                        layout = Layout::BatchPlanar {
                            positions: (p.in_h / 2) * (p.in_w / 2),
                            ch: p.c,
                        };
                    }
                    Layout::PerImage => {
                        for b in 0..batch {
                            pool_forward(
                                p.in_h,
                                p.in_w,
                                p.c,
                                &src[b * cur_len..(b + 1) * cur_len],
                                &mut dst[b * out_len..(b + 1) * out_len],
                            );
                        }
                    }
                },
                QLayer::Dense(d) => {
                    match layout {
                        Layout::BatchPlanar { positions, ch } => {
                            // Per-image unbatch: gather image b's planes into
                            // NHWC, then the (small) dense tail per image.
                            for b in 0..batch {
                                planar_to_nhwc_pitched(
                                    &src[b * positions..],
                                    positions,
                                    ch,
                                    batch * positions,
                                    &mut s.nhwc[..cur_len],
                                );
                                dense_forward(
                                    d,
                                    &s.nhwc[..cur_len],
                                    &mut dst[b * out_len..(b + 1) * out_len],
                                );
                            }
                        }
                        Layout::PerImage => {
                            for b in 0..batch {
                                dense_forward(
                                    d,
                                    &src[b * cur_len..(b + 1) * cur_len],
                                    &mut dst[b * out_len..(b + 1) * out_len],
                                );
                            }
                        }
                    }
                    layout = Layout::PerImage;
                }
            }
            cur_len = out_len;
            in_a = !in_a;
        }
        // A model ending on a conv/pool leaves the buffer batch-planar:
        // unbatch so callers always see per-image NHWC logits.
        if let Layout::BatchPlanar { positions, ch } = layout {
            let (src, dst) = if in_a {
                (&s.act_a[..], &mut s.act_b[..])
            } else {
                (&s.act_b[..], &mut s.act_a[..])
            };
            for b in 0..batch {
                // Split borrow: nhwc is a distinct field from act_a/act_b.
                planar_to_nhwc_pitched(
                    &src[b * positions..],
                    positions,
                    ch,
                    batch * positions,
                    &mut s.nhwc[..cur_len],
                );
                dst[b * cur_len..(b + 1) * cur_len].copy_from_slice(&s.nhwc[..cur_len]);
            }
            in_a = !in_a;
        }
        (in_a, cur_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::calibrate_ranges;
    use crate::forward::{ForwardScratch, SkipMaskSet};
    use crate::qmodel::quantize_model;
    use cifar10sim::DatasetConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn quantized_micro(seed: u64) -> (QuantModel, cifar10sim::SyntheticCifar) {
        let data = cifar10sim::generate(DatasetConfig::tiny(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        let m = tinynn::Sequential::new("bm", tinytensor::Shape4::nhwc(1, 32, 32, 3))
            .conv_relu(4, 3, &mut rng)
            .maxpool()
            .conv_relu(6, 3, &mut rng)
            .maxpool()
            .dense(10, true, &mut rng);
        let ranges = calibrate_ranges(&m, &data.train.take(8));
        (quantize_model(&m, &ranges), data)
    }

    fn random_masks(q: &QuantModel, seed: u64, density_mod: u64) -> SkipMaskSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = q.conv_indices().len();
        let mut masks = SkipMaskSet::none(n);
        for k in 0..n {
            let c = q.conv(k);
            let len = c.geom.out_c * c.patch_len();
            masks.per_conv[k] = Some(
                (0..len)
                    .map(|_| rng.gen_range(0u64..density_mod) == 0)
                    .collect(),
            );
        }
        masks
    }

    fn stacked_qinputs(q: &QuantModel, data: &cifar10sim::SyntheticCifar, n: usize) -> Vec<i8> {
        let mut flat = Vec::new();
        for i in 0..n {
            flat.extend(q.quantize_input(data.test.image(i)));
        }
        flat
    }

    #[test]
    fn batched_forward_bit_exact_with_per_image_all_batch_sizes() {
        let (q, data) = quantized_micro(301);
        let masks = random_masks(&q, 7, 3);
        let compiled = CompiledMasks::compile(&q, &masks);
        let mut per_image = ForwardScratch::for_model(&q);
        let mut batch_scratch = BatchScratch::for_model(&q, 8);
        for batch in 1..=8usize {
            let flat = stacked_qinputs(&q, &data, batch);
            let got = q.forward_compiled_batch_scratch(
                &flat,
                batch,
                None,
                Some(&compiled),
                &mut batch_scratch,
            );
            let in_len = q.input_shape.item_len();
            for b in 0..batch {
                let want = q.forward_compiled_scratch(
                    &flat[b * in_len..(b + 1) * in_len],
                    None,
                    Some(&compiled),
                    &mut per_image,
                );
                let out_len = want.len();
                assert_eq!(
                    &got[b * out_len..(b + 1) * out_len],
                    &want[..],
                    "batch {batch}, image {b}"
                );
            }
        }
    }

    #[test]
    fn batched_conv0_cache_and_predictions_bit_exact() {
        let (q, data) = quantized_micro(302);
        let masks = random_masks(&q, 11, 4);
        let compiled = CompiledMasks::compile(&q, &masks);
        let mut per_image = ForwardScratch::for_model(&q);
        let mut bs = BatchScratch::for_model(&q, 5);
        let in_len = q.input_shape.item_len();
        // Ragged batch (5 then 3) with the cached conv0 pair columns.
        for batch in [5usize, 3] {
            let flat = stacked_qinputs(&q, &data, batch);
            let pcolt = q.conv0_pair_cols_batch(&flat, batch).expect("conv first");
            let preds = q.predict_compiled_batch_scratch(
                &flat,
                batch,
                Some(&pcolt),
                Some(&compiled),
                &mut bs,
            );
            for (b, &pred) in preds.iter().enumerate() {
                let want = q.predict_compiled_scratch(
                    &flat[b * in_len..(b + 1) * in_len],
                    None,
                    Some(&compiled),
                    &mut per_image,
                );
                assert_eq!(pred, want, "batch {batch}, image {b}");
            }
        }
    }

    #[test]
    fn batched_exact_path_matches_reference() {
        let (q, data) = quantized_micro(303);
        let mut bs = BatchScratch::for_model(&q, 4);
        let flat = stacked_qinputs(&q, &data, 4);
        let got = q.forward_compiled_batch_scratch(&flat, 4, None, None, &mut bs);
        let in_len = q.input_shape.item_len();
        for b in 0..4 {
            let want = q.forward_quantized(&flat[b * in_len..(b + 1) * in_len], None);
            let out_len = want.len();
            assert_eq!(&got[b * out_len..(b + 1) * out_len], &want[..], "image {b}");
        }
    }

    #[test]
    fn scratch_reports_capacity_and_bytes() {
        let (q, _) = quantized_micro(304);
        let bs = BatchScratch::for_model(&q, 6);
        assert_eq!(bs.max_batch(), 6);
        assert!(bs.resident_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "exceeds scratch capacity")]
    fn oversized_batch_is_rejected() {
        let (q, data) = quantized_micro(305);
        let mut bs = BatchScratch::for_model(&q, 2);
        let flat = stacked_qinputs(&q, &data, 3);
        let _ = q.forward_compiled_batch_scratch(&flat, 3, None, None, &mut bs);
    }
}
