//! Execution-plan IR: one lowering of a [`QuantModel`], one layer-graph
//! walker, shared by **every** engine in the workspace.
//!
//! Before this module each engine — the boolean-mask reference
//! ([`crate::forward`]), the per-image compiled path ([`crate::compiled`]),
//! the batch-major path and its checkpoint resume ([`crate::batch`]), the
//! CMSIS-style exact engine (`cmsisnn`) and the unpacked straight-line
//! engine (`unpackgen`) — re-matched `QLayer` with its own hand-rolled
//! traversal loop, scratch sizing and logits epilogue. Adding one layer
//! kind (or one backend) meant touching five walkers.
//!
//! [`ExecPlan::lower`] walks the model **once** and produces an ordered
//! list of typed [`Segment`]s:
//!
//! * per-segment geometry (positions, patch/pair-row extents, in/out
//!   lengths) and dense MAC counts — the *cost hooks* the analytic
//!   estimators (`dse::estimate_stats`, `xcubeai`) read without re-deriving
//!   shapes;
//! * each segment's **input-layout fill strategy**: whether the incoming
//!   activation buffer is NHWC/per-image or channel-planar is a static
//!   property of the layer sequence (convs emit planar, dense/GAP emit
//!   per-image, pool preserves), so the plan bakes it in and backends stop
//!   tracking layout at runtime;
//! * **checkpoint boundaries**: the segment range of each "conv segment"
//!   (one conv plus every following non-conv segment up to the next conv
//!   or through the logits epilogue) — the unit the prefix-sharing DSE
//!   resumes at ([`crate::batch::BatchCheckpoint`]);
//! * a final [`Segment::Logits`] epilogue where backends normalize the
//!   output layout (planar → NHWC unbatch) or charge their softmax cost;
//! * the workspace-wide scratch extents (largest activation, im2col,
//!   pair-column and accumulator buffers) every scratch allocator needs.
//!
//! Backends implement [`ExecBackend`] — one monomorphized executor per
//! segment kind — and [`ExecPlan::execute`] / [`ExecPlan::execute_range`]
//! drive them. The executors own every hot inner loop (pair-interleaved
//! column fills, SMLAD kernels) exactly as before: the plan owns *traversal
//! and shapes*, never the fill inner loop, so the monolithic batched path
//! stays within measurement noise of the hand-rolled walker (A/B-gated by
//! the `batch_micro` bench).

use crate::qmodel::{QAdd, QConv, QDense, QLayer, QuantModel};
use std::ops::Range;
use tinytensor::shape::ConvGeometry;

pub mod verify;
pub use verify::PlanError;

/// One convolution segment: the τ-bearing unit of the plan.
#[derive(Debug, Clone)]
pub struct ConvSegment {
    /// Index into `model.layers`.
    pub layer_idx: usize,
    /// Conv ordinal (the τ-trie depth / skip-mask index).
    pub ordinal: usize,
    /// Layer geometry (copied; `ConvGeometry` is `Copy`).
    pub geom: ConvGeometry,
    /// Output positions per image.
    pub positions: usize,
    /// Patch length (`kh·kw·in_c`).
    pub patch: usize,
    /// Pair rows of the interleaved column buffer (`⌈patch/2⌉`).
    pub pair_rows: usize,
    /// Input activation length per image.
    pub in_len: usize,
    /// Output activation length per image.
    pub out_len: usize,
    /// Fill strategy: `true` when the incoming activations are
    /// channel-planar (fused planar pair fill), `false` for NHWC staging +
    /// pair interleave.
    pub planar_in: bool,
    /// Dense (pre-skipping) MAC count — the segment cost hook.
    pub macs: u64,
    /// Stash side-output: slots this segment's result is recorded into
    /// (residual skip sources; usually empty, more than one for nested
    /// blocks stashing the same value).
    pub stash_slots: Vec<usize>,
}

/// One 2×2/2 max-pool segment.
#[derive(Debug, Clone)]
pub struct PoolSegment {
    /// Index into `model.layers`.
    pub layer_idx: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Channels.
    pub c: usize,
    /// Input activation length per image.
    pub in_len: usize,
    /// Output activation length per image.
    pub out_len: usize,
    /// `true` when the incoming activations are channel-planar (the pool
    /// then runs per-plane; layout is preserved either way).
    pub planar_in: bool,
    /// Stash side-output slots (see [`ConvSegment::stash_slots`]).
    pub stash_slots: Vec<usize>,
}

/// One global-average-pool segment (spatial mean per channel).
#[derive(Debug, Clone)]
pub struct GapSegment {
    /// Index into `model.layers`.
    pub layer_idx: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Channels.
    pub c: usize,
    /// Spatial positions averaged per channel (`in_h·in_w`).
    pub positions: usize,
    /// Input activation length per image.
    pub in_len: usize,
    /// Output activation length per image (`c`; the output is a per-image
    /// vector, i.e. NHWC and planar coincide).
    pub out_len: usize,
    /// `true` when the incoming activations are channel-planar.
    pub planar_in: bool,
    /// Stash side-output slots (see [`ConvSegment::stash_slots`]).
    pub stash_slots: Vec<usize>,
}

/// One fully-connected segment.
#[derive(Debug, Clone)]
pub struct DenseSegment {
    /// Index into `model.layers`.
    pub layer_idx: usize,
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// `Some((positions, channels))` when the incoming activations are
    /// channel-planar and must be gathered to NHWC before the kernel.
    pub planar_in: Option<(usize, usize)>,
    /// Dense MAC count — the segment cost hook.
    pub macs: u64,
    /// Stash side-output slots (see [`ConvSegment::stash_slots`]).
    pub stash_slots: Vec<usize>,
}

/// One residual elementwise-add segment: joins the current activation
/// (`rhs`, the block branch) with a stashed activation (`lhs`, the skip
/// branch) under the two-input requantization of [`QAdd`]. The output takes
/// the `rhs` layout; when the branches were produced in different layouts
/// the executor index-maps the stash through `(positions, ch)`.
#[derive(Debug, Clone)]
pub struct AddSegment {
    /// Index into `model.layers`.
    pub layer_idx: usize,
    /// Stash slot holding the skip (lhs) operand.
    pub slot: usize,
    /// Elements per image (both operands and the output).
    pub len: usize,
    /// The stash was recorded channel-planar.
    pub lhs_planar: bool,
    /// The current activation (and therefore the output) is channel-planar.
    pub rhs_planar: bool,
    /// Planar view dims; `(len, 1)` when both operands are NHWC.
    pub positions: usize,
    /// Planar view channels (see `positions`).
    pub ch: usize,
    /// Stash side-output slots of this segment's own result (chained
    /// residual blocks stash the join output).
    pub stash_slots: Vec<usize>,
}

/// The logits epilogue: always the final segment. Backends normalize their
/// output layout here (planar → NHWC / per-image unbatch) and/or charge
/// their classifier-head cost (softmax cycles).
#[derive(Debug, Clone)]
pub struct LogitsSegment {
    /// Logits length per image.
    pub out_len: usize,
    /// `Some((positions, channels))` when the model ends on a conv/pool
    /// whose planar output must be converted to NHWC.
    pub planar: Option<(usize, usize)>,
}

/// One typed segment of an [`ExecPlan`].
#[derive(Debug, Clone)]
pub enum Segment {
    /// Convolution (τ-bearing).
    Conv(ConvSegment),
    /// 2×2/2 max-pool.
    Pool(PoolSegment),
    /// Global average pool.
    GlobalAvgPool(GapSegment),
    /// Fully connected.
    Dense(DenseSegment),
    /// Residual elementwise add (skip join).
    Add(AddSegment),
    /// Logits epilogue (always last, exactly once).
    Logits(LogitsSegment),
}

impl Segment {
    /// Output activation length per image (logits segments report the
    /// unchanged logits length).
    pub fn out_len(&self) -> usize {
        match self {
            Segment::Conv(s) => s.out_len,
            Segment::Pool(s) => s.out_len,
            Segment::GlobalAvgPool(s) => s.out_len,
            Segment::Dense(s) => s.out_dim,
            Segment::Add(s) => s.len,
            Segment::Logits(s) => s.out_len,
        }
    }

    /// Dense MAC count of this segment (the cost hook; 0 for pools, adds
    /// and the epilogue).
    pub fn macs(&self) -> u64 {
        match self {
            Segment::Conv(s) => s.macs,
            Segment::Dense(s) => s.macs,
            _ => 0,
        }
    }

    /// Stash side-output slots of this segment (empty for the epilogue).
    pub fn stash_slots(&self) -> &[usize] {
        match self {
            Segment::Conv(s) => &s.stash_slots,
            Segment::Pool(s) => &s.stash_slots,
            Segment::GlobalAvgPool(s) => &s.stash_slots,
            Segment::Dense(s) => &s.stash_slots,
            Segment::Add(s) => &s.stash_slots,
            Segment::Logits(_) => &[],
        }
    }
}

/// Monomorphized per-segment executors: one implementation per engine.
///
/// Implementations keep every hot inner loop (`#[inline]` executors over
/// the backend's own scratch) — the walker only dispatches. Executors are
/// invoked in plan order; the logits executor runs exactly once, last.
pub trait ExecBackend {
    /// Execute one convolution segment.
    fn conv(&mut self, seg: &ConvSegment);
    /// Execute one max-pool segment.
    fn pool(&mut self, seg: &PoolSegment);
    /// Execute one global-average-pool segment.
    fn global_avg_pool(&mut self, seg: &GapSegment);
    /// Execute one fully-connected segment.
    fn dense(&mut self, seg: &DenseSegment);
    /// Execute one residual elementwise-add segment (consumes stash
    /// `seg.slot`).
    fn add(&mut self, seg: &AddSegment);
    /// Record the **current** activation into stash slot `slot` (`len`
    /// elements per image, in the backend's current layout). Invoked by the
    /// walker right after the producing segment's executor (or, for a
    /// stash of the model input, before the first segment).
    fn stash(&mut self, slot: usize, len: usize);
    /// Execute the logits epilogue.
    fn logits(&mut self, seg: &LogitsSegment);
}

/// A lowered model: ordered typed segments + checkpoint boundaries +
/// scratch extents. Immutable after [`ExecPlan::lower`]; engines either
/// store one per engine instance or one per scratch.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    segments: Vec<Segment>,
    /// Segment index of conv ordinal `k`.
    conv_starts: Vec<usize>,
    /// Largest per-image activation length (input included).
    max_act: usize,
    /// Largest im2col column matrix (i8 elements) of any conv.
    max_cols: usize,
    /// Largest pair-interleaved column buffer (i16 elements per image).
    max_pair_colt: usize,
    /// Largest conv output-position count (accumulator scratch).
    max_positions: usize,
    /// Logits length per image.
    logits_len: usize,
    /// Model input length per image (the leading stash source).
    input_len: usize,
    /// Slots stashed straight from the model input (a residual block
    /// opening the model), recorded by the walker before the first segment.
    input_stashes: Vec<usize>,
    /// Per-slot stashed activation length (per image); slots are numbered
    /// in stash order. Backends size their stash buffers from this.
    stash_lens: Vec<usize>,
}

impl ExecPlan {
    /// Lower `model` into its execution plan. O(layers); engines call this
    /// once per engine/scratch construction.
    pub fn lower(model: &QuantModel) -> Self {
        let mut segments = Vec::with_capacity(model.layers.len() + 1);
        let mut conv_starts = Vec::new();
        let mut planar = false; // the input arrives NHWC (per-image)
        let mut planar_dims: Option<(usize, usize)> = None;
        let input_len = model.input_shape.item_len();
        let mut cur_len = input_len;
        let mut max_act = cur_len;
        let mut max_cols = 0usize;
        let mut max_pair_colt = 0usize;
        let mut max_positions = 0usize;
        // Residual bookkeeping: slots are numbered in stash order; the
        // stack mirrors the Stash/Add pairing; per-slot layout is recorded
        // so the Add segment knows how to index each operand.
        let mut input_stashes = Vec::new();
        let mut stash_lens: Vec<usize> = Vec::new();
        let mut stash_stack: Vec<usize> = Vec::new();
        let mut stash_layout: Vec<(bool, Option<(usize, usize)>)> = Vec::new();

        for (layer_idx, layer) in model.layers.iter().enumerate() {
            match layer {
                QLayer::Conv(c) => {
                    let positions = c.geom.out_positions();
                    let patch = c.geom.patch_len();
                    let pair_rows = patch.div_ceil(2);
                    let out_len = positions * c.geom.out_c;
                    conv_starts.push(segments.len());
                    segments.push(Segment::Conv(ConvSegment {
                        layer_idx,
                        ordinal: conv_starts.len() - 1,
                        geom: c.geom,
                        positions,
                        patch,
                        pair_rows,
                        in_len: cur_len,
                        out_len,
                        planar_in: planar,
                        macs: c.geom.macs(),
                        stash_slots: Vec::new(),
                    }));
                    max_cols = max_cols.max(positions * patch);
                    max_pair_colt = max_pair_colt.max(pair_rows * 2 * positions);
                    max_positions = max_positions.max(positions);
                    planar = true;
                    planar_dims = Some((positions, c.geom.out_c));
                    cur_len = out_len;
                }
                QLayer::Pool(p) => {
                    segments.push(Segment::Pool(PoolSegment {
                        layer_idx,
                        in_h: p.in_h,
                        in_w: p.in_w,
                        c: p.c,
                        in_len: cur_len,
                        out_len: p.out_len(),
                        planar_in: planar,
                        stash_slots: Vec::new(),
                    }));
                    if planar {
                        planar_dims = Some(((p.in_h / 2) * (p.in_w / 2), p.c));
                    }
                    cur_len = p.out_len();
                }
                QLayer::GlobalAvgPool(g) => {
                    segments.push(Segment::GlobalAvgPool(GapSegment {
                        layer_idx,
                        in_h: g.in_h,
                        in_w: g.in_w,
                        c: g.c,
                        positions: g.positions(),
                        in_len: cur_len,
                        out_len: g.out_len(),
                        planar_in: planar,
                        stash_slots: Vec::new(),
                    }));
                    // One value per channel: NHWC and planar coincide.
                    planar = false;
                    planar_dims = None;
                    cur_len = g.out_len();
                }
                QLayer::Dense(d) => {
                    segments.push(Segment::Dense(DenseSegment {
                        layer_idx,
                        in_dim: d.in_dim,
                        out_dim: d.out_dim,
                        planar_in: planar.then(|| planar_dims.expect("planar dims")),
                        macs: (d.in_dim * d.out_dim) as u64,
                        stash_slots: Vec::new(),
                    }));
                    planar = false;
                    planar_dims = None;
                    cur_len = d.out_dim;
                }
                QLayer::Stash(st) => {
                    debug_assert_eq!(st.len, cur_len, "stash length mismatch");
                    let slot = stash_lens.len();
                    stash_lens.push(cur_len);
                    stash_layout.push((planar, planar_dims));
                    stash_stack.push(slot);
                    // The stash is a side-output of whatever produced the
                    // current activation: the previous segment, or the
                    // model input itself.
                    match segments.last_mut() {
                        Some(Segment::Conv(s)) => s.stash_slots.push(slot),
                        Some(Segment::Pool(s)) => s.stash_slots.push(slot),
                        Some(Segment::GlobalAvgPool(s)) => s.stash_slots.push(slot),
                        Some(Segment::Dense(s)) => s.stash_slots.push(slot),
                        Some(Segment::Add(s)) => s.stash_slots.push(slot),
                        Some(Segment::Logits(_)) => {
                            unreachable!("logits epilogue precedes a layer")
                        }
                        None => input_stashes.push(slot),
                    }
                }
                QLayer::Add(a) => {
                    let slot = stash_stack.pop().expect("Add without live stash");
                    let (lhs_planar, lhs_dims) = stash_layout[slot];
                    // Operand length and planar-dims agreement are verifier
                    // invariants now (StashLifetime / LayoutChain in
                    // [`verify`]); only the model-side length is checked
                    // here, since the plan records the walked length.
                    debug_assert_eq!(a.len, cur_len, "Add length mismatch");
                    let (positions, ch) = match (planar, lhs_planar) {
                        (true, _) => planar_dims.expect("planar dims"),
                        (false, true) => lhs_dims.expect("planar dims"),
                        (false, false) => (cur_len, 1),
                    };
                    segments.push(Segment::Add(AddSegment {
                        layer_idx,
                        slot,
                        len: cur_len,
                        lhs_planar,
                        rhs_planar: planar,
                        positions,
                        ch,
                        stash_slots: Vec::new(),
                    }));
                    // Output layout and length are the rhs branch's.
                }
            }
            max_act = max_act.max(cur_len);
        }
        assert!(
            stash_stack.is_empty(),
            "unconsumed residual stash: every Stash needs a matching Add"
        );
        segments.push(Segment::Logits(LogitsSegment {
            out_len: cur_len,
            planar: planar.then(|| planar_dims.expect("planar dims")),
        }));
        let plan = Self {
            segments,
            conv_starts,
            max_act,
            max_cols,
            max_pair_colt,
            max_positions,
            logits_len: cur_len,
            input_len,
            input_stashes,
            stash_lens,
        };
        // Every lowering self-checks in debug builds: a plan that fails
        // static verification must never reach an executor. Release builds
        // skip this (zero hot-path cost); the serving registry re-runs it
        // at deploy time instead.
        #[cfg(debug_assertions)]
        {
            if let Err(e) = plan.verify() {
                panic!("lowered plan failed static verification: {e}");
            }
            debug_assert_eq!(
                plan.peak_activation_pair(),
                model.peak_activation_pair(),
                "plan stash accounting diverged from the model's peak"
            );
        }
        plan
    }

    /// The ordered segments (the last is always [`Segment::Logits`]).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of convolution segments.
    pub fn n_convs(&self) -> usize {
        self.conv_starts.len()
    }

    /// The conv segment of ordinal `k`.
    pub fn conv_segment(&self, ordinal: usize) -> &ConvSegment {
        match &self.segments[self.conv_starts[ordinal]] {
            Segment::Conv(s) => s,
            _ => unreachable!("conv_starts indexes a conv segment"),
        }
    }

    /// Segment range **before** conv ordinal 0 — the leading non-conv
    /// prefix a resumable execution runs at start. For a conv-free model
    /// this is the whole plan (logits epilogue included).
    pub fn leading_range(&self) -> Range<usize> {
        0..self
            .conv_starts
            .first()
            .copied()
            .unwrap_or(self.segments.len())
    }

    /// Checkpoint segment range of conv ordinal `k`: the conv segment plus
    /// every following non-conv segment up to the next conv, or through the
    /// logits epilogue for the final conv — the unit
    /// [`QuantModel::batch_advance_into`](crate::batch) resumes at.
    pub fn advance_range(&self, ordinal: usize) -> Range<usize> {
        let start = self.conv_starts[ordinal];
        let end = self
            .conv_starts
            .get(ordinal + 1)
            .copied()
            .unwrap_or(self.segments.len());
        start..end
    }

    /// Largest per-image activation length, model input included.
    pub fn max_act(&self) -> usize {
        self.max_act
    }

    /// Largest im2col column matrix (i8 elements) of any conv segment.
    pub fn max_cols(&self) -> usize {
        self.max_cols
    }

    /// Largest pair-interleaved column buffer (i16 elements per image).
    pub fn max_pair_colt(&self) -> usize {
        self.max_pair_colt
    }

    /// Largest conv output-position count (per-image accumulator extent).
    pub fn max_positions(&self) -> usize {
        self.max_positions
    }

    /// Logits length per image.
    pub fn logits_len(&self) -> usize {
        self.logits_len
    }

    /// Number of residual stash slots the plan uses (backends size their
    /// stash buffers from [`ExecPlan::stash_lens`]).
    pub fn n_stash_slots(&self) -> usize {
        self.stash_lens.len()
    }

    /// Per-slot stashed activation length (per image), in slot order.
    pub fn stash_lens(&self) -> &[usize] {
        &self.stash_lens
    }

    /// Total dense MAC count over all segments (the cost hooks summed).
    pub fn total_macs(&self) -> u64 {
        self.segments.iter().map(Segment::macs).sum()
    }

    /// Drive `backend` through the whole plan.
    #[inline]
    pub fn execute<B: ExecBackend>(&self, backend: &mut B) {
        self.execute_range(0..self.segments.len(), backend);
    }

    /// Drive `backend` through `range` (resumable execution: leading
    /// prefix, one checkpoint segment, tail). A range starting at 0 first
    /// records any stash-of-the-input slots; after each segment its stash
    /// side-outputs are recorded — the walker owns stash *timing*, backends
    /// own the copy.
    ///
    /// Stash-free plans (every chain model) take a dedicated tight loop:
    /// the per-segment stash dispatch, dead as it is for them, measurably
    /// perturbs the batched serving hot path when inlined into it (same
    /// code-layout sensitivity the `batch_micro` A/B guards).
    #[inline]
    pub fn execute_range<B: ExecBackend>(&self, range: Range<usize>, backend: &mut B) {
        if self.stash_lens.is_empty() {
            for seg in &self.segments[range] {
                match seg {
                    Segment::Conv(s) => backend.conv(s),
                    Segment::Pool(s) => backend.pool(s),
                    Segment::GlobalAvgPool(s) => backend.global_avg_pool(s),
                    Segment::Dense(s) => backend.dense(s),
                    Segment::Add(s) => backend.add(s),
                    Segment::Logits(s) => backend.logits(s),
                }
            }
            return;
        }
        if range.start == 0 {
            for &slot in &self.input_stashes {
                backend.stash(slot, self.input_len);
            }
        }
        for seg in &self.segments[range] {
            match seg {
                Segment::Conv(s) => backend.conv(s),
                Segment::Pool(s) => backend.pool(s),
                Segment::GlobalAvgPool(s) => backend.global_avg_pool(s),
                Segment::Dense(s) => backend.dense(s),
                Segment::Add(s) => backend.add(s),
                Segment::Logits(s) => backend.logits(s),
            }
            for &slot in seg.stash_slots() {
                backend.stash(slot, self.stash_lens[slot]);
            }
        }
    }
}

impl QuantModel {
    /// The convolution layer at `layer_idx` (panics when the index does not
    /// name a conv — plan segments guarantee it does).
    #[inline]
    pub fn conv_at(&self, layer_idx: usize) -> &QConv {
        match &self.layers[layer_idx] {
            QLayer::Conv(c) => c,
            _ => unreachable!("segment layer_idx {layer_idx} is not a conv"),
        }
    }

    /// The dense layer at `layer_idx` (panics when the index does not name
    /// a dense layer).
    #[inline]
    pub fn dense_at(&self, layer_idx: usize) -> &QDense {
        match &self.layers[layer_idx] {
            QLayer::Dense(d) => d,
            _ => unreachable!("segment layer_idx {layer_idx} is not dense"),
        }
    }

    /// The residual-add layer at `layer_idx` (panics when the index does
    /// not name an Add).
    #[inline]
    pub fn add_at(&self, layer_idx: usize) -> &QAdd {
        match &self.layers[layer_idx] {
            QLayer::Add(a) => a,
            _ => unreachable!("segment layer_idx {layer_idx} is not an add"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::calibrate_ranges;
    use crate::qmodel::quantize_model;
    use cifar10sim::DatasetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub(crate) fn quantized(seed: u64) -> QuantModel {
        let data = cifar10sim::generate(DatasetConfig::tiny(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        let m = tinynn::Sequential::new("p", tinytensor::Shape4::nhwc(1, 32, 32, 3))
            .conv_relu(4, 3, &mut rng)
            .maxpool()
            .conv_relu(6, 3, &mut rng)
            .maxpool()
            .dense(10, true, &mut rng);
        let ranges = calibrate_ranges(&m, &data.train.take(4));
        quantize_model(&m, &ranges)
    }

    #[test]
    fn lowering_covers_every_layer_plus_logits() {
        let q = quantized(11);
        let plan = ExecPlan::lower(&q);
        assert_eq!(plan.segments().len(), q.layers.len() + 1);
        assert!(matches!(plan.segments().last(), Some(Segment::Logits(_))));
        assert_eq!(plan.n_convs(), q.conv_indices().len());
        assert_eq!(plan.logits_len(), 10);
        assert_eq!(plan.total_macs(), q.macs());
    }

    #[test]
    fn scratch_extents_match_model_helpers() {
        let q = quantized(12);
        let plan = ExecPlan::lower(&q);
        assert_eq!(
            plan.max_act(),
            q.activation_sizes().into_iter().max().unwrap()
        );
        assert_eq!(plan.max_cols(), q.max_im2col_bytes() as usize);
        assert_eq!(plan.max_pair_colt(), q.max_pair_colt_elems());
        assert_eq!(plan.max_positions(), q.max_conv_positions());
    }

    #[test]
    fn fill_strategy_is_static_layout_inference() {
        let q = quantized(13);
        let plan = ExecPlan::lower(&q);
        // conv0 consumes the NHWC input; pool after conv is planar; conv1
        // consumes the planar pool output; the dense head gathers planar.
        let mut saw = 0;
        for seg in plan.segments() {
            match seg {
                Segment::Conv(s) => {
                    assert_eq!(s.planar_in, s.ordinal != 0, "ordinal {}", s.ordinal);
                    saw += 1;
                }
                Segment::Pool(s) => assert!(s.planar_in),
                Segment::Dense(s) => assert!(s.planar_in.is_some()),
                Segment::Logits(s) => assert!(s.planar.is_none()),
                Segment::GlobalAvgPool(_) | Segment::Add(_) => unreachable!(),
            }
        }
        assert_eq!(saw, 2);
    }

    #[test]
    fn residual_lowering_builds_the_dag() {
        let data = cifar10sim::generate(DatasetConfig::tiny(15));
        let m = tinynn::zoo::mini_resnet(15);
        let ranges = calibrate_ranges(&m, &data.train.take(4));
        let q = quantize_model(&m, &ranges);
        let plan = ExecPlan::lower(&q);

        // Two stash slots, none taken from the raw input here (the stem
        // conv+pool precede the first residual block).
        assert_eq!(plan.n_stash_slots(), 2);
        assert_eq!(plan.stash_lens().len(), 2);
        // Stash side-outputs hang off the pool segments preceding each
        // block; each Add consumes its slot in stash order.
        let mut stashing_segments = 0usize;
        let mut add_slots = Vec::new();
        for seg in plan.segments() {
            stashing_segments += usize::from(!seg.stash_slots().is_empty());
            if let Segment::Add(a) = seg {
                add_slots.push(a.slot);
                // Both branches of these blocks are conv/pool-produced:
                // planar on both sides, matching dims.
                assert!(a.lhs_planar && a.rhs_planar);
                assert_eq!(a.positions * a.ch, a.len);
                assert!(a.stash_slots.is_empty());
            }
        }
        assert_eq!(stashing_segments, 2);
        assert_eq!(add_slots, vec![0, 1]);
        // Checkpoint ranges still tile the whole plan: Add segments ride in
        // their conv's advance range, so prefix-resume crosses the joins.
        let mut covered = plan.leading_range().len();
        for k in 0..plan.n_convs() {
            covered += plan.advance_range(k).len();
        }
        assert_eq!(covered, plan.segments().len());
        assert_eq!(plan.n_convs(), 5);
        // Markers add no segments: layers minus stash markers plus logits.
        let stash_layers = q
            .layers
            .iter()
            .filter(|l| matches!(l, QLayer::Stash(_)))
            .count();
        assert_eq!(plan.segments().len(), q.layers.len() - stash_layers + 1);
    }

    #[test]
    fn input_stash_is_recorded_for_blocks_opening_the_model() {
        // A residual block right at the input: the stash has no producing
        // segment, so the plan records it as an input stash (NHWC) joined
        // against a planar conv branch.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(16);
        let m = tinynn::Sequential::new("res-in", tinytensor::Shape4::nhwc(1, 8, 8, 2))
            .residual(|m| m.conv(2, 3, &mut rng))
            .global_avg_pool()
            .dense(4, true, &mut rng);
        let n = 4usize;
        let flat: Vec<f32> = (0..n * 8 * 8 * 2)
            .map(|_| rng.gen_range(0.0f32..1.0))
            .collect();
        let calib = cifar10sim::Dataset {
            images: tinytensor::Tensor::from_vec(tinytensor::Shape4::nhwc(n, 8, 8, 2), flat)
                .unwrap(),
            labels: vec![0; n],
        };
        let ranges = calibrate_ranges(&m, &calib);
        let q = quantize_model(&m, &ranges);
        let plan = ExecPlan::lower(&q);
        assert_eq!(plan.n_stash_slots(), 1);
        // No segment carries the stash side-output...
        assert!(plan.segments().iter().all(|s| s.stash_slots().is_empty()));
        let add = plan
            .segments()
            .iter()
            .find_map(|s| match s {
                Segment::Add(a) => Some(a),
                _ => None,
            })
            .expect("has an Add segment");
        // ...and the join mixes an NHWC stash with a planar conv branch.
        assert!(!add.lhs_planar);
        assert!(add.rhs_planar);
        assert_eq!(add.positions * add.ch, add.len);
    }

    #[test]
    fn checkpoint_ranges_tile_the_plan() {
        let q = quantized(14);
        let plan = ExecPlan::lower(&q);
        let mut covered = plan.leading_range().len();
        for k in 0..plan.n_convs() {
            let r = plan.advance_range(k);
            assert!(matches!(plan.segments()[r.start], Segment::Conv(_)));
            covered += r.len();
        }
        assert_eq!(covered, plan.segments().len());
        assert_eq!(plan.leading_range(), 0..0); // model starts with a conv
    }
}
