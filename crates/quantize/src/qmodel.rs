//! Quantized model IR and the f32 → int8 conversion.

use crate::calib::ActivationRanges;
use serde::{Deserialize, Serialize};
use tinynn::layers::Layer;
use tinynn::Sequential;
use tinytensor::quant::{QuantParams, RequantMultiplier};
use tinytensor::shape::ConvGeometry;
use tinytensor::Shape4;

/// Quantized convolution (ReLU fused into the output clamp when `relu`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QConv {
    /// Geometry (shared with the f32 layer).
    pub geom: ConvGeometry,
    /// Symmetric int8 weights, `[out_c][kh][kw][in_c]` flattened.
    pub weights: Vec<i8>,
    /// int32 bias at scale `s_in · s_w`.
    pub bias: Vec<i32>,
    /// Input activation quantization.
    pub in_qp: QuantParams,
    /// Output activation quantization.
    pub out_qp: QuantParams,
    /// Weight scale (symmetric).
    pub w_scale: f32,
    /// Output-stage fixed-point multiplier `s_in·s_w/s_out`.
    pub mult: RequantMultiplier,
    /// ReLU fused into the output stage.
    pub relu: bool,
}

impl QConv {
    /// Patch length (`kh·kw·in_c`).
    pub fn patch_len(&self) -> usize {
        self.geom.patch_len()
    }

    /// Activation clamp bounds implementing the (optional) fused ReLU.
    pub fn act_bounds(&self) -> (i32, i32) {
        if self.relu {
            (self.out_qp.zero_point.max(-128), 127)
        } else {
            (-128, 127)
        }
    }

    /// Centered padding value of this layer's im2col columns: the
    /// reference kernels pad the i8 column buffer with the input zero
    /// point clamped to i8 and center afterwards (`x − zp`), so padding
    /// contributes `clamp(zp) − zp` — 0 whenever the zero point is
    /// representable in i8. Every column fill must use this exact value to
    /// stay bit-exact with the reference.
    pub fn centered_pad(&self) -> i16 {
        self.in_qp.zero_point.clamp(-128, 127) as i16 - self.in_qp.zero_point as i16
    }
}

/// Quantized max-pool (value-preserving in the quantized domain).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QPool {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Channels.
    pub c: usize,
}

impl QPool {
    /// Output length per image.
    pub fn out_len(&self) -> usize {
        (self.in_h / 2) * (self.in_w / 2) * self.c
    }

    /// Input length per image.
    pub fn in_len(&self) -> usize {
        self.in_h * self.in_w * self.c
    }
}

/// Quantized global average pool.
///
/// Average pooling keeps the input quantization (scale and zero point pass
/// through, like [`QPool`]), so the layer carries only its geometry; the
/// output stage is the integer rounding average
/// [`tinytensor::quant::avg_round`], shared verbatim by every engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QGlobalAvgPool {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Channels.
    pub c: usize,
}

impl QGlobalAvgPool {
    /// Spatial positions averaged per channel.
    pub fn positions(&self) -> usize {
        self.in_h * self.in_w
    }

    /// Output length per image (one value per channel).
    pub fn out_len(&self) -> usize {
        self.c
    }

    /// Input length per image.
    pub fn in_len(&self) -> usize {
        self.in_h * self.in_w * self.c
    }
}

/// Quantized fully-connected layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QDense {
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Symmetric int8 weights, `[out][in]`.
    pub weights: Vec<i8>,
    /// int32 bias at scale `s_in · s_w`.
    pub bias: Vec<i32>,
    /// Input activation quantization.
    pub in_qp: QuantParams,
    /// Output activation quantization.
    pub out_qp: QuantParams,
    /// Weight scale.
    pub w_scale: f32,
    /// Output-stage multiplier.
    pub mult: RequantMultiplier,
    /// Fused ReLU.
    pub relu: bool,
}

impl QDense {
    /// Activation clamp bounds implementing the (optional) fused ReLU.
    pub fn act_bounds(&self) -> (i32, i32) {
        if self.relu {
            (self.out_qp.zero_point.max(-128), 127)
        } else {
            (-128, 127)
        }
    }
}

/// Residual skip source marker: the matching [`QAdd`] consumes the
/// activation recorded here. Value-preserving (the trunk flows through
/// unchanged); carries only its length and, implicitly, the quantization of
/// the activation it records (the `in_qp` of the layer that follows).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QStash {
    /// Stashed activation element count.
    pub len: usize,
}

/// Quantized residual elementwise add (+ fused ReLU).
///
/// Each branch arrives at its own quantization: the skip (`lhs`, the
/// stashed activation) and the block output (`rhs`, the current
/// activation). The output stage folds each branch's scale to the output
/// scale with its own fixed-point multiplier (round-to-nearest), sums, adds
/// the output zero point and saturates — the shared
/// [`tinytensor::quant::add_requant_i8`] helper, which every engine's Add
/// kernel calls per element so results are bit-exact by construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QAdd {
    /// Elements per image (both branches and the output).
    pub len: usize,
    /// Skip-branch (stash) quantization.
    pub lhs_qp: QuantParams,
    /// Block-branch (current activation) quantization.
    pub rhs_qp: QuantParams,
    /// Output activation quantization.
    pub out_qp: QuantParams,
    /// `s_lhs / s_out` as a fixed-point multiplier.
    pub lhs_mult: RequantMultiplier,
    /// `s_rhs / s_out` as a fixed-point multiplier.
    pub rhs_mult: RequantMultiplier,
    /// ReLU fused into the output clamp.
    pub relu: bool,
}

impl QAdd {
    /// Activation clamp bounds implementing the (optional) fused ReLU.
    pub fn act_bounds(&self) -> (i32, i32) {
        if self.relu {
            (self.out_qp.zero_point.max(-128), 127)
        } else {
            (-128, 127)
        }
    }

    /// The two-input output stage for one element pair — every engine's
    /// residual-add kernel runs exactly this.
    #[inline(always)]
    pub fn apply(&self, lhs: i8, rhs: i8) -> i8 {
        let (lo, hi) = self.act_bounds();
        tinytensor::quant::add_requant_i8(
            lhs,
            self.lhs_qp.zero_point,
            self.lhs_mult,
            rhs,
            self.rhs_qp.zero_point,
            self.rhs_mult,
            self.out_qp.zero_point,
            lo,
            hi,
        )
    }
}

/// One quantized layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum QLayer {
    /// Convolution (+ fused ReLU).
    Conv(QConv),
    /// 2×2/2 max-pool.
    Pool(QPool),
    /// Global average pool (integer rounding average, value-preserving
    /// quantization).
    GlobalAvgPool(QGlobalAvgPool),
    /// Fully connected (+ fused ReLU).
    Dense(QDense),
    /// Residual skip source (value-preserving marker).
    Stash(QStash),
    /// Residual elementwise add with two-input requantization (+ fused
    /// ReLU).
    Add(QAdd),
}

impl QLayer {
    /// Output activation element count.
    pub fn out_len(&self) -> usize {
        match self {
            QLayer::Conv(c) => c.geom.out_positions() * c.geom.out_c,
            QLayer::Pool(p) => p.out_len(),
            QLayer::GlobalAvgPool(g) => g.out_len(),
            QLayer::Dense(d) => d.out_dim,
            QLayer::Stash(s) => s.len,
            QLayer::Add(a) => a.len,
        }
    }

    /// Input activation element count.
    pub fn in_len(&self) -> usize {
        match self {
            QLayer::Conv(c) => c.geom.in_h * c.geom.in_w * c.geom.in_c,
            QLayer::Pool(p) => p.in_len(),
            QLayer::GlobalAvgPool(g) => g.in_len(),
            QLayer::Dense(d) => d.in_dim,
            QLayer::Stash(s) => s.len,
            QLayer::Add(a) => a.len,
        }
    }

    /// Dense MAC count (pre-skipping).
    pub fn macs(&self) -> u64 {
        match self {
            QLayer::Conv(c) => c.geom.macs(),
            QLayer::Pool(_) | QLayer::GlobalAvgPool(_) | QLayer::Stash(_) | QLayer::Add(_) => 0,
            QLayer::Dense(d) => (d.in_dim * d.out_dim) as u64,
        }
    }
}

/// A fully quantized model ready for any engine in the workspace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantModel {
    /// Model name (inherited from the f32 model).
    pub name: String,
    /// Single-image input shape.
    pub input_shape: Shape4,
    /// Input quantization parameters.
    pub input_qp: QuantParams,
    /// Quantized layer stack.
    pub layers: Vec<QLayer>,
}

impl QuantModel {
    /// Total dense MAC count (the paper's "#MAC Ops" for the exact model).
    pub fn macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Indices (into `layers`) of the convolution layers, in order — the
    /// layers the approximation targets.
    pub fn conv_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| matches!(l, QLayer::Conv(_)).then_some(i))
            .collect()
    }

    /// The `i`-th convolution layer.
    pub fn conv(&self, ordinal: usize) -> &QConv {
        let idx = self.conv_indices()[ordinal];
        match &self.layers[idx] {
            QLayer::Conv(c) => c,
            _ => unreachable!(),
        }
    }

    /// Bytes of constant model data (weights int8 + bias int32).
    pub fn weight_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| match l {
                QLayer::Conv(c) => (c.weights.len() + 4 * c.bias.len()) as u64,
                QLayer::Dense(d) => (d.weights.len() + 4 * d.bias.len()) as u64,
                QLayer::Pool(_) | QLayer::GlobalAvgPool(_) | QLayer::Stash(_) | QLayer::Add(_) => 0,
            })
            .sum()
    }

    /// Activation buffer sizes: input length followed by each layer's output
    /// length (all int8), for RAM estimation.
    pub fn activation_sizes(&self) -> Vec<usize> {
        let mut v = Vec::with_capacity(self.layers.len() + 1);
        v.push(self.input_shape.item_len());
        for l in &self.layers {
            v.push(l.out_len());
        }
        v
    }

    /// Peak ping-pong activation pair (max over layers of in+out) **plus
    /// any residual stashes live at that layer**, bytes. A skip branch
    /// cannot be aliased by a two-buffer arena while the block overwrites
    /// the activations, so its buffer stays resident from the Stash to the
    /// matching Add and must count toward the RAM peak.
    pub fn peak_activation_pair(&self) -> u64 {
        let mut stash_stack: Vec<u64> = Vec::new();
        let mut stash_sum = 0u64;
        let mut peak = 0u64;
        for l in &self.layers {
            // For a Stash, in+out already covers the copy being made; for
            // an Add, the lhs stash is still in `stash_sum` (popped after).
            peak = peak.max((l.in_len() + l.out_len()) as u64 + stash_sum);
            match l {
                QLayer::Stash(s) => {
                    stash_stack.push(s.len as u64);
                    stash_sum += s.len as u64;
                }
                QLayer::Add(_) => {
                    stash_sum -= stash_stack.pop().expect("Add without Stash");
                }
                _ => {}
            }
        }
        peak
    }

    /// Largest im2col column-matrix any conv layer needs, in bytes — the
    /// kernel scratch of the im2col-based engines.
    pub fn max_im2col_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| match l {
                QLayer::Conv(c) => (c.geom.out_positions() * c.geom.patch_len()) as u64,
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Quantize a trained f32 model using pre-computed activation ranges.
pub fn quantize_model(model: &Sequential, ranges: &ActivationRanges) -> QuantModel {
    assert_eq!(
        ranges.ranges.len(),
        model.layers.len() + 1,
        "range/layer mismatch"
    );
    let qp_at = |boundary: usize| -> QuantParams {
        let (lo, hi) = ranges.ranges[boundary];
        QuantParams::from_min_max(lo, hi).expect("valid calibration range")
    };

    let input_qp = qp_at(0);
    let mut layers = Vec::new();
    let mut in_qp = input_qp;
    // Quantization of each live stash, LIFO like the layer stack's
    // Stash/Add pairing.
    let mut stash_qps: Vec<QuantParams> = Vec::new();
    let mut i = 0usize;
    while i < model.layers.len() {
        match &model.layers[i] {
            Layer::Conv(c) => {
                let relu = matches!(model.layers.get(i + 1), Some(Layer::Relu(_)));
                let out_boundary = i + 1 + usize::from(relu);
                let out_qp = qp_at(out_boundary);
                let (weights, bias, w_scale, mult) =
                    quantize_params(&c.weights, &c.bias, in_qp, out_qp);
                layers.push(QLayer::Conv(QConv {
                    geom: c.geom,
                    weights,
                    bias,
                    in_qp,
                    out_qp,
                    w_scale,
                    mult,
                    relu,
                }));
                in_qp = out_qp;
                i = out_boundary;
            }
            Layer::Pool(p) => {
                layers.push(QLayer::Pool(QPool {
                    in_h: p.in_h,
                    in_w: p.in_w,
                    c: p.c,
                }));
                i += 1;
            }
            Layer::GlobalAvgPool(g) => {
                // Value-preserving in the quantized domain: in_qp passes
                // through unchanged, exactly like max-pool.
                layers.push(QLayer::GlobalAvgPool(QGlobalAvgPool {
                    in_h: g.in_h,
                    in_w: g.in_w,
                    c: g.c,
                }));
                i += 1;
            }
            Layer::Dense(d) => {
                let relu = matches!(model.layers.get(i + 1), Some(Layer::Relu(_)));
                let out_boundary = i + 1 + usize::from(relu);
                let out_qp = qp_at(out_boundary);
                let (weights, bias, w_scale, mult) =
                    quantize_params(&d.weights, &d.bias, in_qp, out_qp);
                layers.push(QLayer::Dense(QDense {
                    in_dim: d.in_dim,
                    out_dim: d.out_dim,
                    weights,
                    bias,
                    in_qp,
                    out_qp,
                    w_scale,
                    mult,
                    relu,
                }));
                in_qp = out_qp;
                i = out_boundary;
            }
            Layer::Stash(n) => {
                // The stash records the current activation at its current
                // quantization; the matching Add folds it to the output
                // scale.
                layers.push(QLayer::Stash(QStash { len: *n }));
                stash_qps.push(in_qp);
                i += 1;
            }
            Layer::Add(n) => {
                let relu = matches!(model.layers.get(i + 1), Some(Layer::Relu(_)));
                let out_boundary = i + 1 + usize::from(relu);
                let out_qp = qp_at(out_boundary);
                let lhs_qp = stash_qps.pop().expect("Add without matching Stash");
                let lhs_mult =
                    RequantMultiplier::from_real(lhs_qp.scale as f64 / out_qp.scale as f64)
                        .expect("lhs requant multiplier");
                let rhs_mult =
                    RequantMultiplier::from_real(in_qp.scale as f64 / out_qp.scale as f64)
                        .expect("rhs requant multiplier");
                layers.push(QLayer::Add(QAdd {
                    len: *n,
                    lhs_qp,
                    rhs_qp: in_qp,
                    out_qp,
                    lhs_mult,
                    rhs_mult,
                    relu,
                }));
                in_qp = out_qp;
                i = out_boundary;
            }
            Layer::Relu(_) => {
                // A ReLU not consumed by fusion would be an IR bug upstream.
                unreachable!("standalone ReLU at layer {i}: fusion walk out of sync");
            }
        }
    }
    QuantModel {
        name: model.name.clone(),
        input_shape: model.input_shape,
        input_qp,
        layers,
    }
}

/// Quantize one layer's parameters: symmetric int8 weights, int32 bias,
/// output-stage multiplier.
fn quantize_params(
    weights: &[f32],
    bias: &[f32],
    in_qp: QuantParams,
    out_qp: QuantParams,
) -> (Vec<i8>, Vec<i32>, f32, RequantMultiplier) {
    let abs_max = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
    let wq = QuantParams::symmetric(abs_max).expect("weight scale");
    let w_scale = wq.scale;
    let qweights: Vec<i8> = weights.iter().map(|&w| wq.quantize(w)).collect();
    let bias_scale = (in_qp.scale as f64) * (w_scale as f64);
    let qbias: Vec<i32> = bias
        .iter()
        .map(|&b| ((b as f64 / bias_scale).round()).clamp(i32::MIN as f64, i32::MAX as f64) as i32)
        .collect();
    let real_mult = bias_scale / out_qp.scale as f64;
    let mult = RequantMultiplier::from_real(real_mult).expect("requant multiplier");
    (qweights, qbias, w_scale, mult)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::calibrate_ranges;
    use cifar10sim::DatasetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quantized_micro() -> QuantModel {
        let data = cifar10sim::generate(DatasetConfig::tiny(21));
        let mut rng = StdRng::seed_from_u64(2);
        let m = Sequential::new("m", Shape4::nhwc(1, 32, 32, 3))
            .conv_relu(4, 3, &mut rng)
            .maxpool()
            .conv_relu(6, 3, &mut rng)
            .maxpool()
            .dense(10, true, &mut rng);
        let ranges = calibrate_ranges(&m, &data.train.take(8));
        quantize_model(&m, &ranges)
    }

    #[test]
    fn structure_is_fused() {
        let q = quantized_micro();
        // conv+relu, pool, conv+relu, pool, dense => 5 quantized layers
        assert_eq!(q.layers.len(), 5);
        assert!(matches!(&q.layers[0], QLayer::Conv(c) if c.relu));
        assert!(matches!(&q.layers[1], QLayer::Pool(_)));
        assert!(matches!(&q.layers[2], QLayer::Conv(c) if c.relu));
        assert!(matches!(&q.layers[4], QLayer::Dense(d) if !d.relu));
        assert_eq!(q.conv_indices(), vec![0, 2]);
    }

    #[test]
    fn scales_chain_across_layers() {
        let q = quantized_micro();
        // layer 0's out_qp must be layer 2's in_qp (pool is transparent)
        let (c0, c2) = (q.conv(0), q.conv(1));
        assert_eq!(c0.out_qp, c2.in_qp);
        // multiplier approximates s_in*s_w/s_out
        let real = c0.in_qp.scale as f64 * c0.w_scale as f64 / c0.out_qp.scale as f64;
        assert!((c0.mult.to_real() - real).abs() / real < 1e-6);
    }

    #[test]
    fn weights_are_symmetric_and_saturate_at_127() {
        let q = quantized_micro();
        let c = q.conv(0);
        let max = c.weights.iter().map(|&w| (w as i32).abs()).max().unwrap();
        assert_eq!(max, 127, "largest |w| must map to 127 under symmetric PTQ");
    }

    #[test]
    fn relu_bounds() {
        let q = quantized_micro();
        let c = q.conv(0);
        let (lo, hi) = c.act_bounds();
        assert_eq!(lo, c.out_qp.zero_point);
        assert_eq!(hi, 127);
        if let QLayer::Dense(d) = &q.layers[4] {
            assert_eq!(d.act_bounds(), (-128, 127));
        } else {
            panic!("layer 4 should be dense");
        }
    }

    #[test]
    fn residual_quantizes_with_fused_relu_and_branch_multipliers() {
        let data = cifar10sim::generate(DatasetConfig::tiny(23));
        let m = tinynn::zoo::mini_resnet(23);
        let ranges = calibrate_ranges(&m, &data.train.take(8));
        let q = quantize_model(&m, &ranges);
        let adds: Vec<&QAdd> = q
            .layers
            .iter()
            .filter_map(|l| match l {
                QLayer::Add(a) => Some(a),
                _ => None,
            })
            .collect();
        let stashes = q
            .layers
            .iter()
            .filter(|l| matches!(l, QLayer::Stash(_)))
            .count();
        assert_eq!(adds.len(), 2);
        assert_eq!(stashes, 2);
        for a in adds {
            // The trailing builder ReLU fused into the add's clamp.
            assert!(a.relu);
            let (lo, hi) = a.act_bounds();
            assert_eq!((lo, hi), (a.out_qp.zero_point.max(-128), 127));
            // Each branch's multiplier approximates s_branch / s_out.
            for (mult, qp) in [(a.lhs_mult, a.lhs_qp), (a.rhs_mult, a.rhs_qp)] {
                let real = qp.scale as f64 / a.out_qp.scale as f64;
                assert!((mult.to_real() - real).abs() / real < 1e-6);
            }
        }
        // The residual markers carry no weights and no MACs.
        assert_eq!(q.macs(), m.macs());
    }

    #[test]
    fn peak_activation_counts_live_stashes() {
        // 8×8×2 input, residual block of two convs: during the block the
        // live set is conv-in (128) + conv-out (128) + stash (128) = 384,
        // which the naive max(in+out) = 256 undercounts.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let m = Sequential::new("res-ram", Shape4::nhwc(1, 8, 8, 2))
            .residual(|b| b.conv_relu(2, 3, &mut rng).conv(2, 3, &mut rng))
            .global_avg_pool()
            .dense(4, true, &mut rng);
        let n = 4usize;
        let flat: Vec<f32> = (0..n * 8 * 8 * 2).map(|i| (i % 13) as f32 / 13.0).collect();
        let calib = cifar10sim::Dataset {
            images: tinytensor::Tensor::from_vec(Shape4::nhwc(n, 8, 8, 2), flat).unwrap(),
            labels: vec![0; n],
        };
        let q = quantize_model(&m, &calibrate_ranges(&m, &calib));
        assert_eq!(q.peak_activation_pair(), 384);
    }

    #[test]
    fn macs_match_f32_model() {
        let data = cifar10sim::generate(DatasetConfig::tiny(22));
        let m = tinynn::zoo::mini_cifar(1);
        let ranges = calibrate_ranges(&m, &data.train.take(4));
        let q = quantize_model(&m, &ranges);
        assert_eq!(q.macs(), m.macs());
    }

    #[test]
    fn memory_helpers_consistent() {
        let q = quantized_micro();
        let sizes = q.activation_sizes();
        assert_eq!(sizes.len(), q.layers.len() + 1);
        assert_eq!(sizes[0], 32 * 32 * 3);
        assert!(q.peak_activation_pair() >= (sizes[0] + sizes[1]) as u64);
        assert!(q.max_im2col_bytes() > 0);
        assert!(q.weight_bytes() > 0);
    }
}
