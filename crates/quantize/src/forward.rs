//! Bit-exact int8 reference forward pass, with optional skip masks.
//!
//! This is the hot path of the DSE: each of the thousands of explored
//! configurations evaluates classification accuracy by running this forward
//! over the evaluation set with its skip masks. The implementation therefore
//! keeps tight, allocation-reused inner loops (centered i16 columns × i8
//! weights), no cycle accounting, and rayon parallelism *across images*.

use crate::plan::{
    AddSegment, ConvSegment, DenseSegment, ExecBackend, ExecPlan, GapSegment, LogitsSegment,
    PoolSegment,
};
use crate::qmodel::{QConv, QDense, QLayer, QuantModel};
use cifar10sim::Dataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tinytensor::im2col::fill_im2col_i8;
use tinytensor::quant::{avg_round, requantize_to_i8};

/// Callback receiving `(conv_ordinal, layer, centered_cols)` during an
/// inspected forward pass.
pub type Inspector<'a> = dyn FnMut(usize, &QConv, &[i16]) + 'a;

/// Skip masks for the convolution layers of one approximate configuration.
///
/// `per_conv[k]` (by conv *ordinal*, not layer index) holds, when present,
/// a boolean per `(out_channel, patch_index)` product — `true` means the
/// product is **skipped** (omitted from the generated code), exactly
/// Eq. (3): `Sum'_c = b + Σ a_i·w_i − Σ_{i: S_i ≤ τ} a_i·w_i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkipMaskSet {
    /// One optional mask per conv layer, length `out_c · patch_len`.
    pub per_conv: Vec<Option<Vec<bool>>>,
}

impl SkipMaskSet {
    /// No approximation anywhere.
    pub fn none(n_convs: usize) -> Self {
        Self {
            per_conv: vec![None; n_convs],
        }
    }

    /// True when no mask skips anything.
    pub fn is_noop(&self) -> bool {
        self.per_conv
            .iter()
            .all(|m| m.as_ref().is_none_or(|v| v.iter().all(|&s| !s)))
    }

    /// Number of skipped products in conv ordinal `k`, weighted by how many
    /// output positions execute them (i.e. skipped MACs for that layer).
    pub fn skipped_macs(&self, model: &QuantModel) -> u64 {
        let mut total = 0u64;
        for (k, idx) in model.conv_indices().into_iter().enumerate() {
            if let (Some(mask), QLayer::Conv(c)) = (&self.per_conv[k], &model.layers[idx]) {
                let skipped_products = mask.iter().filter(|&&s| s).count() as u64;
                total += skipped_products * c.geom.out_positions() as u64;
            }
        }
        total
    }
}

/// Reusable per-thread scratch buffers for the forward pass.
///
/// Public so batch drivers outside this crate (the DSE evaluation cache)
/// can allocate once per worker instead of once per image.
pub struct ForwardScratch {
    /// The lowered execution plan every walker over this scratch follows —
    /// built once per scratch, like the dense streams.
    pub(crate) plan: ExecPlan,
    pub(crate) act_a: Vec<i8>,
    pub(crate) act_b: Vec<i8>,
    pub(crate) cols: Vec<i8>,
    pub(crate) centered: Vec<i16>,
    /// Natural transposed-row staging ahead of the pair interleave
    /// (compiled-mask kernels; lazily sized).
    pub(crate) colt: Vec<i16>,
    /// Pair-interleaved columns (compiled-mask kernels; lazily sized).
    pub(crate) pcolt: Vec<i16>,
    /// Per-lane i32 accumulators (compiled-mask kernels; lazily sized).
    pub(crate) acc: Vec<i32>,
    /// NHWC staging buffer for planar → dense boundaries (compiled path;
    /// lazily sized).
    pub(crate) nhwc: Vec<i8>,
    /// Residual stash buffers, one per plan stash slot (sized at
    /// construction; stored in the walking backend's own layout).
    pub(crate) stash: Vec<Vec<i8>>,
    /// τ-independent dense (nothing-skipped) pair streams per conv ordinal,
    /// executing exact layers through the same stream kernel (compiled
    /// path; built at construction — this is what binds the scratch to its
    /// model).
    pub(crate) dense_streams: Vec<crate::compiled::CompiledConv>,
}

impl ForwardScratch {
    /// Scratch sized for the largest activation / im2col buffer of `model`
    /// — and **bound to `model`**: the dense pair streams baked in here are
    /// that model's weights, so a scratch must not be reused across
    /// different models (build one per model instead).
    ///
    /// The compiled-path column/accumulator buffers start empty and are
    /// grown on first compiled forward, so the reference bool-mask path
    /// pays nothing for them.
    pub fn for_model(model: &QuantModel) -> Self {
        let plan = ExecPlan::lower(model);
        let max_act = plan.max_act();
        let max_cols = plan.max_cols();
        let stash = plan.stash_lens().iter().map(|&l| vec![0; l]).collect();
        Self {
            plan,
            act_a: vec![0; max_act],
            act_b: vec![0; max_act],
            cols: vec![0; max_cols],
            centered: vec![0; max_cols],
            colt: Vec::new(),
            pcolt: Vec::new(),
            acc: Vec::new(),
            nhwc: Vec::new(),
            stash,
            dense_streams: crate::compiled::dense_streams(model),
        }
    }

    /// Grow the compiled-path buffers to the plan's requirements (no-op
    /// once sized).
    pub(crate) fn ensure_compiled(&mut self, model: &QuantModel) {
        debug_assert_eq!(
            self.dense_streams.len(),
            model.conv_indices().len(),
            "ForwardScratch reused across models (it is bound to the model \
             it was constructed for)"
        );
        let max_cols = self.plan.max_cols();
        if self.colt.len() < max_cols {
            self.colt.resize(max_cols, 0);
        }
        let max_pcolt = self.plan.max_pair_colt();
        if self.pcolt.len() < max_pcolt {
            self.pcolt.resize(max_pcolt, 0);
        }
        let max_positions = self.plan.max_positions();
        if self.acc.len() < max_positions {
            self.acc.resize(max_positions, 0);
        }
        let max_act = self.act_a.len();
        if self.nhwc.len() < max_act {
            self.nhwc.resize(max_act, 0);
        }
    }
}

impl QuantModel {
    /// Quantize a `[0,1]` f32 image into the model's input domain.
    pub fn quantize_input(&self, image: &[f32]) -> Vec<i8> {
        image.iter().map(|&v| self.input_qp.quantize(v)).collect()
    }

    /// Reference forward on a quantized input; returns the final int8
    /// activation (logits in the quantized domain).
    pub fn forward_quantized(&self, qinput: &[i8], masks: Option<&SkipMaskSet>) -> Vec<i8> {
        let mut scratch = ForwardScratch::for_model(self);
        self.forward_scratch_inspect(qinput, masks, &mut scratch, &mut None)
    }

    /// Forward pass that additionally hands every convolution layer's
    /// *centered* im2col columns (`a_i − zero_point`, padding already 0) to
    /// `inspector(conv_ordinal, layer, centered_cols)`.
    ///
    /// This is the capture point for the significance analysis: Eq. (2)
    /// needs `E[a_i]` over calibration images and output positions, and the
    /// centered column buffer is exactly the `a_i` stream of Eq. (1).
    pub fn forward_inspect(
        &self,
        qinput: &[i8],
        masks: Option<&SkipMaskSet>,
        inspector: &mut Inspector<'_>,
    ) -> Vec<i8> {
        let mut scratch = ForwardScratch::for_model(self);
        let mut ins: Option<&mut Inspector<'_>> = Some(inspector);
        self.forward_scratch_inspect(qinput, masks, &mut scratch, &mut ins)
    }

    /// Forward reusing caller scratch (the batch paths allocate once per
    /// thread, not once per image).
    fn forward_scratch(
        &self,
        qinput: &[i8],
        masks: Option<&SkipMaskSet>,
        s: &mut ForwardScratch,
    ) -> Vec<i8> {
        self.forward_scratch_inspect(qinput, masks, s, &mut None)
    }

    fn forward_scratch_inspect(
        &self,
        qinput: &[i8],
        masks: Option<&SkipMaskSet>,
        s: &mut ForwardScratch,
        inspector: &mut Option<&mut Inspector<'_>>,
    ) -> Vec<i8> {
        assert_eq!(
            qinput.len(),
            self.input_shape.item_len(),
            "input length mismatch"
        );
        let cur_len = qinput.len();
        s.act_a[..cur_len].copy_from_slice(qinput);
        let ForwardScratch {
            plan,
            act_a,
            act_b,
            cols,
            centered,
            stash,
            ..
        } = s;
        let mut backend = RefBackend {
            model: self,
            masks,
            inspector,
            act_a,
            act_b,
            cols,
            centered,
            stash,
            cur_len,
            in_a: true,
        };
        plan.execute(&mut backend);
        let in_a = backend.in_a;
        let n = s.plan.logits_len();
        let fin = if in_a { &s.act_a[..n] } else { &s.act_b[..n] };
        fin.to_vec()
    }

    /// Full reference inference from an f32 image.
    pub fn forward(&self, image: &[f32]) -> Vec<i8> {
        self.forward_quantized(&self.quantize_input(image), None)
    }

    /// Predicted class.
    pub fn predict(&self, image: &[f32]) -> usize {
        argmax_i8(&self.forward(image))
    }

    /// Top-1 accuracy over a dataset, optionally with skip masks.
    /// Rayon-parallel across images; deterministic (pure per-image work).
    pub fn accuracy(&self, data: &Dataset, masks: Option<&SkipMaskSet>) -> f32 {
        if data.is_empty() {
            return 0.0;
        }
        let correct: usize = (0..data.len())
            .into_par_iter()
            .map_init(
                || ForwardScratch::for_model(self),
                |scratch, i| {
                    let q = self.quantize_input(data.image(i));
                    let logits = self.forward_scratch(&q, masks, scratch);
                    usize::from(argmax_i8(&logits) == data.labels[i] as usize)
                },
            )
            .sum();
        correct as f32 / data.len() as f32
    }
}

/// The boolean-mask reference backend: NHWC activations ping-ponging
/// between two scratch buffers, branchy masked conv kernel, optional
/// centered-column inspector (the significance capture point).
struct RefBackend<'r, 'm, 'i1, 'i2> {
    model: &'m QuantModel,
    masks: Option<&'r SkipMaskSet>,
    inspector: &'r mut Option<&'i1 mut Inspector<'i2>>,
    act_a: &'r mut Vec<i8>,
    act_b: &'r mut Vec<i8>,
    cols: &'r mut Vec<i8>,
    centered: &'r mut Vec<i16>,
    /// Residual stash buffers (NHWC, like every reference activation).
    stash: &'r mut Vec<Vec<i8>>,
    cur_len: usize,
    /// Current activation lives in `act_a`.
    in_a: bool,
}

impl RefBackend<'_, '_, '_, '_> {
    #[inline(always)]
    fn advance(&mut self, out_len: usize) {
        self.cur_len = out_len;
        self.in_a = !self.in_a;
    }
}

impl ExecBackend for RefBackend<'_, '_, '_, '_> {
    #[inline]
    fn conv(&mut self, seg: &ConvSegment) {
        let c = self.model.conv_at(seg.layer_idx);
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        let mask = self.masks.and_then(|m| m.per_conv[seg.ordinal].as_deref());
        conv_forward(
            c,
            &src[..self.cur_len],
            &mut dst[..seg.out_len],
            mask,
            self.cols,
            self.centered,
        );
        if let Some(ins) = self.inspector.as_deref_mut() {
            ins(seg.ordinal, c, &self.centered[..seg.positions * seg.patch]);
        }
        self.advance(seg.out_len);
    }

    #[inline]
    fn pool(&mut self, seg: &PoolSegment) {
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        pool_forward(
            seg.in_h,
            seg.in_w,
            seg.c,
            &src[..self.cur_len],
            &mut dst[..seg.out_len],
        );
        self.advance(seg.out_len);
    }

    #[inline]
    fn global_avg_pool(&mut self, seg: &GapSegment) {
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        gap_forward_nhwc(
            seg.positions,
            seg.c,
            &src[..self.cur_len],
            &mut dst[..seg.out_len],
        );
        self.advance(seg.out_len);
    }

    #[inline]
    fn dense(&mut self, seg: &DenseSegment) {
        let d = self.model.dense_at(seg.layer_idx);
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        dense_forward(d, &src[..self.cur_len], &mut dst[..seg.out_dim]);
        self.advance(seg.out_dim);
    }

    #[inline(never)]
    fn add(&mut self, seg: &AddSegment) {
        // The reference path is NHWC throughout, so both operands share one
        // layout and the join is plain elementwise two-input requantization.
        let a = self.model.add_at(seg.layer_idx);
        let (src, dst) = if self.in_a {
            (&self.act_a[..], &mut self.act_b[..])
        } else {
            (&self.act_b[..], &mut self.act_a[..])
        };
        let lhs = &self.stash[seg.slot][..seg.len];
        for ((d, &l), &r) in dst[..seg.len].iter_mut().zip(lhs).zip(&src[..seg.len]) {
            *d = a.apply(l, r);
        }
        self.advance(seg.len);
    }

    #[inline(never)]
    fn stash(&mut self, slot: usize, len: usize) {
        let src = if self.in_a {
            &self.act_a[..len]
        } else {
            &self.act_b[..len]
        };
        self.stash[slot][..len].copy_from_slice(src);
    }

    #[inline]
    fn logits(&mut self, _seg: &LogitsSegment) {
        // The reference path is NHWC throughout: nothing to normalize.
    }
}

/// Argmax over int8 logits (first index on ties).
pub fn argmax_i8(xs: &[i8]) -> usize {
    let mut best = 0usize;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

/// im2col + centering for one conv layer: fills `centered[..positions*patch]`
/// with `a_i − zero_point` (padding contributing exactly 0).
pub(crate) fn prepare_centered_cols(
    c: &QConv,
    input: &[i8],
    cols: &mut [i8],
    centered: &mut [i16],
) {
    let geom = &c.geom;
    let patch = geom.patch_len();
    let positions = geom.out_positions();
    let zp = c.in_qp.zero_point;
    let pad = zp.clamp(-128, 127) as i8;
    let cols = &mut cols[..positions * patch];
    fill_im2col_i8(input, geom, pad, cols);
    // Center once: (x - zp) fits i16.
    let centered = &mut centered[..positions * patch];
    for (dst, &v) in centered.iter_mut().zip(cols.iter()) {
        *dst = v as i16 - zp as i16;
    }
}

fn conv_forward(
    c: &QConv,
    input: &[i8],
    output: &mut [i8],
    mask: Option<&[bool]>,
    cols: &mut [i8],
    centered: &mut [i16],
) {
    let geom = &c.geom;
    let patch = geom.patch_len();
    let positions = geom.out_positions();
    let out_c = geom.out_c;
    prepare_centered_cols(c, input, cols, centered);
    let centered = &centered[..positions * patch];
    let (lo, hi) = c.act_bounds();
    let out_zp = c.out_qp.zero_point;

    match mask {
        None => {
            for p in 0..positions {
                let col = &centered[p * patch..(p + 1) * patch];
                let orow = &mut output[p * out_c..(p + 1) * out_c];
                for (o, out) in orow.iter_mut().enumerate() {
                    let w = &c.weights[o * patch..(o + 1) * patch];
                    let mut acc = c.bias[o];
                    for i in 0..patch {
                        acc += col[i] as i32 * w[i] as i32;
                    }
                    *out = clamp_out(acc, c, out_zp, lo, hi);
                }
            }
        }
        Some(mask) => {
            for p in 0..positions {
                let col = &centered[p * patch..(p + 1) * patch];
                let orow = &mut output[p * out_c..(p + 1) * out_c];
                for (o, out) in orow.iter_mut().enumerate() {
                    let w = &c.weights[o * patch..(o + 1) * patch];
                    let m = &mask[o * patch..(o + 1) * patch];
                    let mut acc = c.bias[o];
                    for i in 0..patch {
                        if !m[i] {
                            acc += col[i] as i32 * w[i] as i32;
                        }
                    }
                    *out = clamp_out(acc, c, out_zp, lo, hi);
                }
            }
        }
    }
}

#[inline(always)]
pub(crate) fn clamp_out(acc: i32, c: &QConv, out_zp: i32, lo: i32, hi: i32) -> i8 {
    let v = requantize_to_i8(acc, c.mult, out_zp) as i32;
    v.clamp(lo, hi) as i8
}

pub(crate) fn pool_forward(in_h: usize, in_w: usize, ch: usize, input: &[i8], output: &mut [i8]) {
    let (oh, ow) = (in_h / 2, in_w / 2);
    for oy in 0..oh {
        for ox in 0..ow {
            for c in 0..ch {
                let i00 = ((oy * 2) * in_w + ox * 2) * ch + c;
                let i01 = i00 + ch;
                let i10 = i00 + in_w * ch;
                let i11 = i10 + ch;
                let m = input[i00].max(input[i01]).max(input[i10]).max(input[i11]);
                output[(oy * ow + ox) * ch + c] = m;
            }
        }
    }
}

/// Global average pool over NHWC activations: one rounding integer mean
/// per channel ([`tinytensor::quant::avg_round`] — the shared output stage
/// of every engine's GAP kernel).
pub(crate) fn gap_forward_nhwc(positions: usize, ch: usize, input: &[i8], output: &mut [i8]) {
    debug_assert_eq!(input.len(), positions * ch);
    debug_assert_eq!(output.len(), ch);
    for (c, out) in output.iter_mut().enumerate() {
        let mut sum = 0i32;
        for p in 0..positions {
            sum += input[p * ch + c] as i32;
        }
        *out = avg_round(sum, positions as i32);
    }
}

pub(crate) fn dense_forward(d: &QDense, input: &[i8], output: &mut [i8]) {
    let zp = d.in_qp.zero_point;
    let (lo, hi) = d.act_bounds();
    let out_zp = d.out_qp.zero_point;
    for (o, out) in output.iter_mut().enumerate() {
        let w = &d.weights[o * d.in_dim..(o + 1) * d.in_dim];
        let mut acc = d.bias[o];
        for i in 0..d.in_dim {
            acc += (input[i] as i32 - zp) * w[i] as i32;
        }
        let v = requantize_to_i8(acc, d.mult, out_zp) as i32;
        *out = v.clamp(lo, hi) as i8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::calibrate_ranges;
    use crate::qmodel::quantize_model;
    use cifar10sim::DatasetConfig;
    use tinynn::{SgdConfig, Trainer};

    fn trained_quantized() -> (tinynn::Sequential, QuantModel, cifar10sim::SyntheticCifar) {
        let data = cifar10sim::generate(DatasetConfig::tiny(31));
        let mut m = tinynn::zoo::mini_cifar(3);
        let mut t = Trainer::new(SgdConfig {
            epochs: 12,
            lr: 0.08,
            ..Default::default()
        });
        t.train(&mut m, &data.train);
        let ranges = calibrate_ranges(&m, &data.train.take(32));
        let q = quantize_model(&m, &ranges);
        (m, q, data)
    }

    #[test]
    fn quantized_accuracy_tracks_f32() {
        let (m, q, data) = trained_quantized();
        let f32_acc = tinynn::evaluate_accuracy(&m, &data.test);
        let q_acc = q.accuracy(&data.test, None);
        assert!(
            (f32_acc - q_acc).abs() <= 0.10,
            "int8 accuracy {q_acc} too far from f32 {f32_acc}"
        );
        assert!(q_acc > 0.2, "quantized accuracy collapsed: {q_acc}");
    }

    #[test]
    fn noop_mask_is_bit_exact_with_no_mask() {
        let (_, q, data) = trained_quantized();
        let masks = SkipMaskSet::none(q.conv_indices().len());
        assert!(masks.is_noop());
        for i in 0..10 {
            let img = data.test.image(i);
            let a = q.forward(img);
            let b = q.forward_quantized(&q.quantize_input(img), Some(&masks));
            assert_eq!(a, b, "image {i}");
        }
    }

    #[test]
    fn all_false_mask_is_noop_and_all_true_changes_everything() {
        let (_, q, data) = trained_quantized();
        let n = q.conv_indices().len();
        let mut masks = SkipMaskSet::none(n);
        // explicit all-false mask on conv 0
        let c0 = q.conv(0);
        masks.per_conv[0] = Some(vec![false; c0.geom.out_c * c0.patch_len()]);
        assert!(masks.is_noop());
        let img = data.test.image(0);
        assert_eq!(
            q.forward(img),
            q.forward_quantized(&q.quantize_input(img), Some(&masks))
        );

        // all-true: conv 0 output becomes bias-only => logits must change
        masks.per_conv[0] = Some(vec![true; c0.geom.out_c * c0.patch_len()]);
        assert!(!masks.is_noop());
        let approx = q.forward_quantized(&q.quantize_input(img), Some(&masks));
        assert_ne!(q.forward(img), approx);
    }

    #[test]
    fn skipped_macs_counts_positions() {
        let (_, q, _) = trained_quantized();
        let n = q.conv_indices().len();
        let c0 = q.conv(0);
        let mut masks = SkipMaskSet::none(n);
        let mut mask = vec![false; c0.geom.out_c * c0.patch_len()];
        mask[0] = true; // one product of channel 0
        mask[c0.patch_len()] = true; // one product of channel 1
        masks.per_conv[0] = Some(mask);
        assert_eq!(masks.skipped_macs(&q), 2 * c0.geom.out_positions() as u64);
    }

    #[test]
    fn single_skip_changes_at_most_one_channel_map() {
        let (_, q, data) = trained_quantized();
        // Skipping products only in channel 0 of conv 0 must leave other
        // channels of conv 0's direct output untouched. We verify indirectly:
        // the final prediction can change, but the forward must stay valid.
        let n = q.conv_indices().len();
        let c0 = q.conv(0);
        let mut mask = vec![false; c0.geom.out_c * c0.patch_len()];
        mask[..c0.patch_len()].fill(true);
        let mut masks = SkipMaskSet::none(n);
        masks.per_conv[0] = Some(mask);
        let img = data.test.image(1);
        let out = q.forward_quantized(&q.quantize_input(img), Some(&masks));
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn pool_is_max_in_quantized_domain() {
        let mut out = vec![0i8; 1];
        pool_forward(2, 2, 1, &[-5, 3, -128, 127], &mut out);
        assert_eq!(out[0], 127);
    }

    #[test]
    fn argmax_i8_ties_first() {
        assert_eq!(argmax_i8(&[1, 7, 7, -3]), 1);
    }

    #[test]
    fn accuracy_deterministic_across_runs() {
        let (_, q, data) = trained_quantized();
        let a = q.accuracy(&data.test, None);
        let b = q.accuracy(&data.test, None);
        assert_eq!(a, b);
    }
}
