//! # quantize
//!
//! 8-bit post-training quantization (PTQ) and the quantized-model IR shared
//! by every inference engine in the workspace.
//!
//! The paper's models are "trained on the CIFAR-10 dataset with 8-bit
//! post-training quantization" (Section II-A). This crate reproduces the
//! TFLite/CMSIS-NN int8 scheme:
//!
//! * activations: per-tensor **affine** (`scale`, `zero_point`), ranges from
//!   a calibration subset;
//! * weights: per-tensor **symmetric** int8 (`zero_point = 0`);
//! * bias: int32 at scale `s_in · s_w`;
//! * output stage: fixed-point requantize (`arm_nn_requantize` semantics,
//!   implemented in [`tinytensor::quant`]) + saturation, with ReLU *fused*
//!   into the output clamp (`max(zero_point, ·)`).
//!
//! [`QuantModel::forward`] is the bit-exact *reference* interpretation of a
//! quantized model. It is deliberately free of any cycle accounting — the
//! DSE evaluates thousands of approximate configurations against it — and it
//! accepts optional per-conv-layer [`SkipMaskSet`]s that omit individual
//! products exactly like the generated approximate code does (Eq. (3) of the
//! paper). The cycle-accounted engines (`cmsisnn`, `unpackgen`, `xcubeai`)
//! must agree with this reference bit-for-bit; integration tests enforce it.

//!
//! For the DSE hot path, [`compiled::CompiledMasks`] lowers a [`SkipMaskSet`]
//! into branch-free per-channel retained-product streams executed over
//! transposed columns (broadcast-weight kernels; the MCU-side SMLAD-pair
//! shape stays in [`tinytensor::simd`] as the codegen model);
//! [`QuantModel::forward_compiled_scratch`] runs them bit-exactly against
//! the reference path, optionally reusing cached first-conv columns.

// The workspace denies `unsafe_code`; the three modules implementing the
// parallel batch path (lifetime-erased pool dispatch, shared-arena cells,
// SIMD intrinsics) are the only ones allowed back in, and every site must
// carry a `SAFETY:` comment (enforced by `repo_lint`).
#[allow(unsafe_code)]
pub mod batch;
pub mod calib;
#[allow(unsafe_code)]
pub mod compiled;
pub mod forward;
pub mod plan;
#[allow(unsafe_code)]
pub mod pool;
pub mod qmodel;

pub use batch::{BatchCheckpoint, BatchScratch};
pub use calib::calibrate_ranges;
pub use compiled::{simd_level_name, CompiledConv, CompiledMasks};
pub use forward::{argmax_i8, ForwardScratch, SkipMaskSet};
pub use plan::{
    AddSegment, ConvSegment, DenseSegment, ExecBackend, ExecPlan, GapSegment, LogitsSegment,
    PlanError, PoolSegment, Segment,
};
pub use pool::BatchPool;
pub use qmodel::{
    quantize_model, QAdd, QConv, QDense, QGlobalAvgPool, QLayer, QPool, QStash, QuantModel,
};
