//! Static verification of lowered [`ExecPlan`]s — the IR's invariants as
//! one explicit, machine-checked pass instead of assumptions scattered
//! across five executors.
//!
//! Every engine, the checkpointed DSE trie and the parallel batch path
//! trust the same properties of a plan: segment layouts chain (a planar
//! producer feeds a planar-declared consumer), stash slots have
//! single-writer/single-reader LIFO lifetimes, the scratch extents bound
//! every segment's buffers, checkpoint ranges partition the segment list,
//! compiled delta streams stay inside their pair-row extent, and parallel
//! lane windows tile the batch exactly. None of those failures is graceful:
//! a violated invariant is an out-of-bounds write in an `unsafe` executor
//! or a silently wrong logit. [`ExecPlan::verify`] checks all of them in
//! one O(segments + probe) pass, [`ExecPlan::lower`] runs it under
//! `debug_assertions` on every lowering, and the serving registry runs it
//! at deploy time (`serve::Registry::deploy`) so a corrupt design is a
//! typed [`PlanError`] at the API boundary rather than a worker panic
//! mid-batch.
//!
//! The checks **re-derive** every bound from segment geometry instead of
//! trusting the lowering's own arithmetic — a verifier that repeats the
//! code it checks verifies nothing. Mutation tests below corrupt each
//! invariant class and assert the matching variant fires.

use super::{ExecPlan, Segment};
use crate::compiled::CompiledConv;

/// Why a lowered plan failed static verification. One variant per
/// invariant class, carrying the offending segment ordinal (or conv
/// ordinal for per-conv invariants) and a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Segment `segment`'s declared input layout/length disagrees with its
    /// predecessor's output (planar/NHWC flags, planar dims, or lengths —
    /// mixed-layout residual joins included).
    LayoutChain {
        /// Offending segment index.
        segment: usize,
        /// What disagreed.
        detail: String,
    },
    /// A stash slot's lifetime is broken at segment `segment`: not written
    /// exactly once before its `Add`, consumed out of LIFO order, length
    /// mismatch, or never consumed at all.
    StashLifetime {
        /// Offending segment index (0 for input-stash violations).
        segment: usize,
        /// What broke.
        detail: String,
    },
    /// A workspace scratch extent (`max_act`/`max_cols`/`max_pair_colt`/
    /// `max_positions`) fails to bound segment `segment`'s re-derived
    /// requirement.
    ScratchExtent {
        /// Offending segment index.
        segment: usize,
        /// Which extent, and the bound it missed.
        detail: String,
    },
    /// Checkpoint ranges do not partition the segment list (conv ordinal
    /// `ordinal`): overlapping/gapped ranges, a `conv_starts` entry not
    /// naming a conv, or a misnumbered conv ordinal.
    CheckpointRange {
        /// Offending conv ordinal.
        ordinal: usize,
        /// What broke.
        detail: String,
    },
    /// A compiled delta stream for conv ordinal `ordinal` violates the
    /// stream contract: indices out of bounds or non-monotone, span table
    /// inconsistent, or tallies disagreeing with the stream payload.
    Stream {
        /// Conv ordinal the stream was compiled for.
        ordinal: usize,
        /// What broke.
        detail: String,
    },
    /// Parallel lane windows for conv ordinal `ordinal` fail to tile the
    /// batch (overlap, gap, or an empty/oversized tile group).
    TileWindows {
        /// Offending conv ordinal.
        ordinal: usize,
        /// What broke.
        detail: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::LayoutChain { segment, detail } => {
                write!(f, "segment {segment}: layout chain broken: {detail}")
            }
            PlanError::StashLifetime { segment, detail } => {
                write!(f, "segment {segment}: stash lifetime broken: {detail}")
            }
            PlanError::ScratchExtent { segment, detail } => {
                write!(f, "segment {segment}: scratch extent too small: {detail}")
            }
            PlanError::CheckpointRange { ordinal, detail } => {
                write!(
                    f,
                    "conv ordinal {ordinal}: checkpoint ranges broken: {detail}"
                )
            }
            PlanError::Stream { ordinal, detail } => {
                write!(
                    f,
                    "conv ordinal {ordinal}: compiled stream invalid: {detail}"
                )
            }
            PlanError::TileWindows { ordinal, detail } => {
                write!(f, "conv ordinal {ordinal}: tile windows unsound: {detail}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// The activation flow state the layout walk threads between segments.
struct Flow {
    planar: bool,
    /// `Some((positions, channels))` iff `planar`.
    dims: Option<(usize, usize)>,
    len: usize,
}

/// One stash slot's recorded write: the layout and length of the value at
/// stash time, for checking the consuming `Add` against.
struct StashRec {
    planar: bool,
    dims: Option<(usize, usize)>,
    len: usize,
}

/// Batch sizes and thread counts the tile-soundness probe simulates —
/// deliberately including sizes that do not divide evenly (tail windows)
/// and thread counts exceeding the batch (empty trailing groups).
const TILE_PROBE_BATCHES: [usize; 4] = [1, 3, 8, 13];
const TILE_PROBE_THREADS: [usize; 4] = [1, 2, 4, 7];

impl ExecPlan {
    /// Statically verify this plan against the full invariant set: layout
    /// chaining, stash lifetimes, scratch extents, checkpoint-range
    /// partitioning and parallel-tile soundness. Compiled delta streams
    /// are per-design artifacts, so they are checked separately by
    /// [`ExecPlan::verify_stream`].
    ///
    /// O(segments) plus a constant-size tile probe per conv; called on
    /// every lowering under `debug_assertions` and at deploy time, never
    /// on an execution hot path.
    pub fn verify(&self) -> Result<(), PlanError> {
        self.verify_layout_and_stashes()?;
        self.verify_scratch_extents()?;
        self.verify_checkpoint_ranges()?;
        self.verify_tiles()?;
        Ok(())
    }

    /// Invariants 1 + 2: walk the segment list once, threading the
    /// activation layout and the stash lifetimes (they share the walk
    /// state: an `Add`'s lhs layout is whatever the stash recorded).
    fn verify_layout_and_stashes(&self) -> Result<(), PlanError> {
        let n_slots = self.stash_lens.len();
        let mut flow = Flow {
            planar: false, // the model input arrives NHWC (per-image)
            dims: None,
            len: self.input_len,
        };
        let mut recs: Vec<StashRec> = Vec::with_capacity(n_slots);
        let mut live: Vec<usize> = Vec::new();
        let mut consumed = vec![false; n_slots];

        let record = |recs: &mut Vec<StashRec>,
                      live: &mut Vec<usize>,
                      flow: &Flow,
                      stash_lens: &[usize],
                      segment: usize,
                      slot: usize|
         -> Result<(), PlanError> {
            // Slots are numbered in stash (write) order, so the next write
            // must mint exactly the next slot id — anything else is a
            // duplicate or out-of-range writer.
            if slot != recs.len() || slot >= stash_lens.len() {
                return Err(PlanError::StashLifetime {
                    segment,
                    detail: format!(
                        "stash writes slot {slot} but the next slot in write order is {} of {}",
                        recs.len(),
                        stash_lens.len()
                    ),
                });
            }
            if stash_lens[slot] != flow.len {
                return Err(PlanError::StashLifetime {
                    segment,
                    detail: format!(
                        "slot {slot} declares len {} but stashes a value of len {}",
                        stash_lens[slot], flow.len
                    ),
                });
            }
            recs.push(StashRec {
                planar: flow.planar,
                dims: flow.dims,
                len: flow.len,
            });
            live.push(slot);
            Ok(())
        };

        for &slot in &self.input_stashes {
            record(&mut recs, &mut live, &flow, &self.stash_lens, 0, slot)?;
        }

        let last = self.segments.len().wrapping_sub(1);
        for (i, seg) in self.segments.iter().enumerate() {
            let layout_err = |detail: String| PlanError::LayoutChain { segment: i, detail };
            if !matches!(seg, Segment::Logits(_)) && i == last {
                return Err(layout_err(
                    "plan does not end with a logits epilogue".into(),
                ));
            }
            match seg {
                Segment::Conv(s) => {
                    if s.planar_in != flow.planar {
                        return Err(layout_err(format!(
                            "conv declares planar_in={} but the flow is planar={}",
                            s.planar_in, flow.planar
                        )));
                    }
                    let geom_in = s.geom.in_h * s.geom.in_w * s.geom.in_c;
                    if s.in_len != flow.len || geom_in != flow.len {
                        return Err(layout_err(format!(
                            "conv in_len {} / geometry input {} vs flow len {}",
                            s.in_len, geom_in, flow.len
                        )));
                    }
                    // The copied per-segment extents must agree with the
                    // geometry they were copied from.
                    let positions = s.geom.out_positions();
                    let patch = s.geom.patch_len();
                    if s.positions != positions
                        || s.patch != patch
                        || s.pair_rows != patch.div_ceil(2)
                        || s.out_len != positions * s.geom.out_c
                    {
                        return Err(layout_err(format!(
                            "conv extents (positions {}, patch {}, pair_rows {}, out_len {}) \
                             disagree with geometry ({}, {}, {}, {})",
                            s.positions,
                            s.patch,
                            s.pair_rows,
                            s.out_len,
                            positions,
                            patch,
                            patch.div_ceil(2),
                            positions * s.geom.out_c
                        )));
                    }
                    flow = Flow {
                        planar: true,
                        dims: Some((positions, s.geom.out_c)),
                        len: s.out_len,
                    };
                }
                Segment::Pool(s) => {
                    if s.planar_in != flow.planar {
                        return Err(layout_err(format!(
                            "pool declares planar_in={} but the flow is planar={}",
                            s.planar_in, flow.planar
                        )));
                    }
                    let geom_in = s.in_h * s.in_w * s.c;
                    if s.in_len != flow.len || geom_in != flow.len {
                        return Err(layout_err(format!(
                            "pool in_len {} / {}x{}x{} vs flow len {}",
                            s.in_len, s.in_h, s.in_w, s.c, flow.len
                        )));
                    }
                    if flow.planar && flow.dims != Some((s.in_h * s.in_w, s.c)) {
                        return Err(layout_err(format!(
                            "pool planar dims {:?} vs flow {:?}",
                            (s.in_h * s.in_w, s.c),
                            flow.dims
                        )));
                    }
                    let out_len = (s.in_h / 2) * (s.in_w / 2) * s.c;
                    if s.out_len != out_len {
                        return Err(layout_err(format!(
                            "pool out_len {} vs re-derived {}",
                            s.out_len, out_len
                        )));
                    }
                    flow = Flow {
                        planar: flow.planar,
                        dims: flow.planar.then_some(((s.in_h / 2) * (s.in_w / 2), s.c)),
                        len: out_len,
                    };
                }
                Segment::GlobalAvgPool(s) => {
                    if s.planar_in != flow.planar {
                        return Err(layout_err(format!(
                            "gap declares planar_in={} but the flow is planar={}",
                            s.planar_in, flow.planar
                        )));
                    }
                    let geom_in = s.in_h * s.in_w * s.c;
                    if s.in_len != flow.len || geom_in != flow.len {
                        return Err(layout_err(format!(
                            "gap in_len {} / {}x{}x{} vs flow len {}",
                            s.in_len, s.in_h, s.in_w, s.c, flow.len
                        )));
                    }
                    if s.positions != s.in_h * s.in_w || s.out_len != s.c {
                        return Err(layout_err(format!(
                            "gap positions {} / out_len {} vs re-derived {} / {}",
                            s.positions,
                            s.out_len,
                            s.in_h * s.in_w,
                            s.c
                        )));
                    }
                    if flow.planar && flow.dims != Some((s.positions, s.c)) {
                        return Err(layout_err(format!(
                            "gap planar dims {:?} vs flow {:?}",
                            (s.positions, s.c),
                            flow.dims
                        )));
                    }
                    // One value per channel: NHWC and planar coincide.
                    flow = Flow {
                        planar: false,
                        dims: None,
                        len: s.c,
                    };
                }
                Segment::Dense(s) => {
                    match (s.planar_in, flow.planar) {
                        (Some(dims), true) if Some(dims) == flow.dims => {}
                        (None, false) => {}
                        _ => {
                            return Err(layout_err(format!(
                                "dense declares planar_in={:?} but the flow is planar={} {:?}",
                                s.planar_in, flow.planar, flow.dims
                            )))
                        }
                    }
                    if s.in_dim != flow.len {
                        return Err(layout_err(format!(
                            "dense in_dim {} vs flow len {}",
                            s.in_dim, flow.len
                        )));
                    }
                    flow = Flow {
                        planar: false,
                        dims: None,
                        len: s.out_dim,
                    };
                }
                Segment::Add(s) => {
                    // Stash lifetime: the consumed slot must be the most
                    // recent live write (LIFO pairing — what lets backends
                    // free a slot's buffer at its Add).
                    match live.pop() {
                        Some(top) if top == s.slot => {}
                        top => {
                            return Err(PlanError::StashLifetime {
                                segment: i,
                                detail: format!(
                                    "Add consumes slot {} but the live stash stack top is {:?}",
                                    s.slot, top
                                ),
                            })
                        }
                    }
                    if consumed[s.slot] {
                        return Err(PlanError::StashLifetime {
                            segment: i,
                            detail: format!("slot {} consumed twice", s.slot),
                        });
                    }
                    consumed[s.slot] = true;
                    let rec = &recs[s.slot];
                    if s.len != flow.len || s.len != rec.len {
                        return Err(PlanError::StashLifetime {
                            segment: i,
                            detail: format!(
                                "Add len {} vs rhs flow len {} / stashed len {}",
                                s.len, flow.len, rec.len
                            ),
                        });
                    }
                    // Mixed-layout residual join: the declared operand
                    // layouts and the planar view dims must agree with the
                    // flow (rhs) and the stash record (lhs).
                    if s.rhs_planar != flow.planar || s.lhs_planar != rec.planar {
                        return Err(layout_err(format!(
                            "Add declares lhs_planar={} rhs_planar={} but stash is planar={} \
                             and flow is planar={}",
                            s.lhs_planar, s.rhs_planar, rec.planar, flow.planar
                        )));
                    }
                    let want_dims = match (flow.planar, rec.planar) {
                        (true, _) => flow.dims,
                        (false, true) => rec.dims,
                        (false, false) => Some((s.len, 1)),
                    };
                    if flow.planar && rec.planar && flow.dims != rec.dims {
                        return Err(layout_err(format!(
                            "Add joins planar dims {:?} against stashed {:?}",
                            flow.dims, rec.dims
                        )));
                    }
                    if Some((s.positions, s.ch)) != want_dims || s.positions * s.ch != s.len {
                        return Err(layout_err(format!(
                            "Add planar view ({}, {}) vs expected {:?} over len {}",
                            s.positions, s.ch, want_dims, s.len
                        )));
                    }
                    // Output layout and length are the rhs branch's:
                    // flow unchanged.
                }
                Segment::Logits(s) => {
                    if i != last {
                        return Err(layout_err(
                            "logits epilogue is not the final segment".into(),
                        ));
                    }
                    if s.out_len != flow.len || s.out_len != self.logits_len {
                        return Err(layout_err(format!(
                            "logits out_len {} vs flow len {} / plan logits_len {}",
                            s.out_len, flow.len, self.logits_len
                        )));
                    }
                    match (s.planar, flow.planar) {
                        (Some(dims), true) if Some(dims) == flow.dims => {}
                        (None, false) => {}
                        _ => {
                            return Err(layout_err(format!(
                                "logits declares planar={:?} but the flow is planar={} {:?}",
                                s.planar, flow.planar, flow.dims
                            )))
                        }
                    }
                }
            }
            for &slot in seg.stash_slots() {
                record(&mut recs, &mut live, &flow, &self.stash_lens, i, slot)?;
            }
        }
        // Dead after last use: every declared slot was written and consumed.
        if recs.len() != n_slots {
            return Err(PlanError::StashLifetime {
                segment: last,
                detail: format!(
                    "{} of {} stash slots never written",
                    n_slots - recs.len(),
                    n_slots
                ),
            });
        }
        if let Some(slot) = consumed.iter().position(|&c| !c) {
            return Err(PlanError::StashLifetime {
                segment: last,
                detail: format!("slot {slot} written but never consumed by an Add"),
            });
        }
        Ok(())
    }

    /// Invariant 3: the workspace scratch extents bound every segment's
    /// requirement, **re-derived from geometry** — not read back from the
    /// same fields the lowering summed them from.
    fn verify_scratch_extents(&self) -> Result<(), PlanError> {
        let extent_err =
            |segment: usize, detail: String| PlanError::ScratchExtent { segment, detail };
        if self.max_act < self.input_len {
            return Err(extent_err(
                0,
                format!("max_act {} < input len {}", self.max_act, self.input_len),
            ));
        }
        for (i, seg) in self.segments.iter().enumerate() {
            let out = seg.out_len();
            if self.max_act < out {
                return Err(extent_err(
                    i,
                    format!("max_act {} < segment out_len {}", self.max_act, out),
                ));
            }
            if let Segment::Conv(s) = seg {
                let positions = s.geom.out_positions();
                let patch = s.geom.patch_len();
                let need_cols = positions * patch;
                let need_pair = patch.div_ceil(2) * 2 * positions;
                if self.max_cols < need_cols {
                    return Err(extent_err(
                        i,
                        format!("max_cols {} < {need_cols}", self.max_cols),
                    ));
                }
                if self.max_pair_colt < need_pair {
                    return Err(extent_err(
                        i,
                        format!("max_pair_colt {} < {need_pair}", self.max_pair_colt),
                    ));
                }
                if self.max_positions < positions {
                    return Err(extent_err(
                        i,
                        format!("max_positions {} < {positions}", self.max_positions),
                    ));
                }
            }
        }
        for (slot, &len) in self.stash_lens.iter().enumerate() {
            if self.max_act < len {
                return Err(extent_err(
                    0,
                    format!("max_act {} < stash slot {slot} len {len}", self.max_act),
                ));
            }
        }
        Ok(())
    }

    /// Invariant 4: `leading_range` plus the per-ordinal `advance_range`s
    /// partition the segment list — contiguous, non-overlapping, total —
    /// and every `conv_starts` entry names the conv of its ordinal.
    fn verify_checkpoint_ranges(&self) -> Result<(), PlanError> {
        let ckpt_err =
            |ordinal: usize, detail: String| PlanError::CheckpointRange { ordinal, detail };
        let mut cursor = self.leading_range();
        if cursor.start != 0 {
            return Err(ckpt_err(0, "leading range does not start at 0".into()));
        }
        // The leading prefix must be conv-free.
        for i in cursor.clone() {
            if matches!(self.segments[i], Segment::Conv(_)) {
                return Err(ckpt_err(
                    0,
                    format!("conv segment {i} before conv_starts[0]"),
                ));
            }
        }
        let mut end = cursor.end;
        for k in 0..self.conv_starts.len() {
            let r = self.advance_range(k);
            if r.start != end {
                return Err(ckpt_err(
                    k,
                    format!(
                        "range {:?} does not continue from the previous end {end} \
                         (overlap or gap)",
                        r
                    ),
                ));
            }
            if r.is_empty() {
                return Err(ckpt_err(k, format!("empty range {r:?}")));
            }
            match self.segments.get(r.start) {
                Some(Segment::Conv(s)) if s.ordinal == k => {}
                other => {
                    return Err(ckpt_err(
                        k,
                        format!(
                            "range start {} is not conv ordinal {k} (found {})",
                            r.start,
                            match other {
                                Some(Segment::Conv(s)) => format!("conv ordinal {}", s.ordinal),
                                Some(_) => "a non-conv segment".into(),
                                None => "nothing".into(),
                            }
                        ),
                    ))
                }
            }
            // Only the range head may be a conv: an interior conv belongs
            // to the next ordinal's range.
            for i in r.start + 1..r.end {
                if matches!(self.segments[i], Segment::Conv(_)) {
                    return Err(ckpt_err(
                        k,
                        format!("interior conv segment {i} inside range {r:?}"),
                    ));
                }
            }
            end = r.end;
            cursor = r;
        }
        let _ = cursor;
        if end != self.segments.len() {
            return Err(ckpt_err(
                self.conv_starts.len().saturating_sub(1),
                format!(
                    "ranges cover [0, {end}) of {} segments (gap at the tail)",
                    self.segments.len()
                ),
            ));
        }
        Ok(())
    }

    /// Invariant 6: for a probe grid of batch sizes and thread counts, the
    /// image-group tiling the parallel batch path would use yields lane
    /// windows that are pairwise disjoint and cover the batch exactly.
    fn verify_tiles(&self) -> Result<(), PlanError> {
        for seg in &self.segments {
            let Segment::Conv(s) = seg else { continue };
            for &batch in &TILE_PROBE_BATCHES {
                for &threads in &TILE_PROBE_THREADS {
                    let g = crate::batch::tile_images(s.pair_rows, s.positions, batch, threads);
                    if g == 0 || g > batch {
                        return Err(PlanError::TileWindows {
                            ordinal: s.ordinal,
                            detail: format!("tile group {g} outside [1, {batch}]"),
                        });
                    }
                    let windows: Vec<(usize, usize)> = (0..batch.div_ceil(g))
                        .map(|t| (t * g, ((t + 1) * g).min(batch)))
                        .collect();
                    check_tile_cover(&windows, batch, s.ordinal)?;
                }
            }
        }
        Ok(())
    }

    /// Invariant 5: validate one compiled delta stream against this plan's
    /// conv segment `ordinal` — span-table shape, per-channel index bounds
    /// and strict monotonicity ([`tinytensor::stream::check_deltas`]), and
    /// payload/tally consistency. Streams are per-design artifacts (masks,
    /// memoized τ streams), so this runs per deploy / per memo build, not
    /// inside [`ExecPlan::verify`].
    pub fn verify_stream(&self, ordinal: usize, cc: &CompiledConv) -> Result<(), PlanError> {
        let stream_err = |detail: String| PlanError::Stream { ordinal, detail };
        if ordinal >= self.n_convs() {
            return Err(stream_err(format!(
                "stream targets conv ordinal {ordinal} of a {}-conv plan",
                self.n_convs()
            )));
        }
        let seg = self.conv_segment(ordinal);
        let out_c = seg.geom.out_c;
        let patch = seg.geom.patch_len();
        let pair_rows = patch.div_ceil(2);
        if cc.row_offsets.len() != out_c + 1 {
            return Err(stream_err(format!(
                "row_offsets len {} vs out_c + 1 = {}",
                cc.row_offsets.len(),
                out_c + 1
            )));
        }
        if cc.row_offsets[0] != 0
            || *cc.row_offsets.last().unwrap_or(&0) as usize != cc.deltas.len()
        {
            return Err(stream_err(format!(
                "row_offsets spans [{}, {}] do not cover the {} delta entries",
                cc.row_offsets[0],
                cc.row_offsets.last().copied().unwrap_or(0),
                cc.deltas.len()
            )));
        }
        if cc.w.len() != 2 * cc.deltas.len() {
            return Err(stream_err(format!(
                "weight payload {} halves vs {} entries",
                cc.w.len(),
                cc.deltas.len()
            )));
        }
        if cc.retained.len() != out_c {
            return Err(stream_err(format!(
                "retained tallies {} vs out_c {}",
                cc.retained.len(),
                out_c
            )));
        }
        for o in 0..out_c {
            let (s, e) = (cc.row_offsets[o] as usize, cc.row_offsets[o + 1] as usize);
            if s > e || e > cc.deltas.len() {
                return Err(stream_err(format!(
                    "channel {o} span [{s}, {e}) out of order"
                )));
            }
            tinytensor::stream::check_deltas(&cc.deltas[s..e], pair_rows).map_err(|err| {
                stream_err(format!("channel {o}: {err} (pair-row extent {pair_rows})"))
            })?;
            if cc.retained[o] as usize > patch {
                return Err(stream_err(format!(
                    "channel {o} retains {} of {patch} products",
                    cc.retained[o]
                )));
            }
            // Every nonzero weight half is one retained nonzero product, so
            // the stream payload can never exceed the retained tally.
            let nonzero = cc.w[2 * s..2 * e].iter().filter(|&&h| h != 0).count();
            if nonzero > cc.retained[o] as usize {
                return Err(stream_err(format!(
                    "channel {o} streams {nonzero} nonzero halves but tallies {} retained",
                    cc.retained[o]
                )));
            }
        }
        Ok(())
    }

    /// The plan-derived peak ping-pong activation pair + live stashes (the
    /// accounting of [`QuantModel::peak_activation_pair`] replayed over
    /// segments and stash side-outputs). [`ExecPlan::lower`] debug-asserts
    /// the two agree — the cross-layer consistency check behind the
    /// stash-slot invariant.
    ///
    /// [`QuantModel::peak_activation_pair`]: crate::QuantModel::peak_activation_pair
    pub fn peak_activation_pair(&self) -> u64 {
        let mut stash_sum = 0u64;
        let mut peak = 0u64;
        for &slot in &self.input_stashes {
            peak = peak.max(2 * self.stash_lens[slot] as u64 + stash_sum);
            stash_sum += self.stash_lens[slot] as u64;
        }
        let mut cur = self.input_len as u64;
        for seg in &self.segments {
            let (in_len, out_len) = match seg {
                Segment::Conv(s) => (s.in_len, s.out_len),
                Segment::Pool(s) => (s.in_len, s.out_len),
                Segment::GlobalAvgPool(s) => (s.in_len, s.out_len),
                Segment::Dense(s) => (s.in_dim, s.out_dim),
                Segment::Add(s) => (s.len, s.len),
                // The epilogue is layout normalization, not a model layer:
                // the model-side accounting has no counterpart for it.
                Segment::Logits(_) => continue,
            };
            peak = peak.max((in_len + out_len) as u64 + stash_sum);
            if let Segment::Add(s) = seg {
                stash_sum -= self.stash_lens[s.slot] as u64;
            }
            cur = out_len as u64;
            for &slot in seg.stash_slots() {
                peak = peak.max(2 * self.stash_lens[slot] as u64 + stash_sum);
                stash_sum += self.stash_lens[slot] as u64;
            }
        }
        let _ = cur;
        peak
    }
}

/// Check that `windows` tile `[0, batch)` exactly: sorted, contiguous
/// (no overlap, no gap), non-empty, first at 0 and last ending at `batch`.
/// Factored out of [`ExecPlan::verify`]'s tile probe so mutation tests can
/// corrupt the window list directly.
fn check_tile_cover(
    windows: &[(usize, usize)],
    batch: usize,
    ordinal: usize,
) -> Result<(), PlanError> {
    let tile_err = |detail: String| PlanError::TileWindows { ordinal, detail };
    let mut end = 0usize;
    for &(lo, hi) in windows {
        if lo != end {
            return Err(tile_err(format!(
                "window [{lo}, {hi}) does not continue from {end} (overlap or gap)"
            )));
        }
        if hi <= lo {
            return Err(tile_err(format!("empty window [{lo}, {hi})")));
        }
        end = hi;
    }
    if end != batch {
        return Err(tile_err(format!(
            "windows cover [0, {end}) of batch {batch}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::super::tests::quantized;
    use super::super::*;
    use super::check_tile_cover;
    use crate::calib::calibrate_ranges;
    use crate::compiled::CompiledConv;
    use crate::qmodel::quantize_model;
    use cifar10sim::DatasetConfig;

    fn resnet_plan() -> ExecPlan {
        let data = cifar10sim::generate(DatasetConfig::tiny(77));
        let m = tinynn::zoo::mini_resnet(77);
        let ranges = calibrate_ranges(&m, &data.train.take(4));
        let q = quantize_model(&m, &ranges);
        ExecPlan::lower(&q)
    }

    #[test]
    fn zoo_plans_verify_clean() {
        for seed in [31, 32, 33] {
            let q = quantized(seed);
            let plan = ExecPlan::lower(&q);
            plan.verify().expect("chain plan verifies");
            assert_eq!(plan.peak_activation_pair(), q.peak_activation_pair());
        }
        let plan = resnet_plan();
        plan.verify().expect("residual plan verifies");
    }

    #[test]
    fn peak_accounting_matches_the_model_for_residual_plans() {
        let data = cifar10sim::generate(DatasetConfig::tiny(78));
        let m = tinynn::zoo::mini_resnet(78);
        let ranges = calibrate_ranges(&m, &data.train.take(4));
        let q = quantize_model(&m, &ranges);
        let plan = ExecPlan::lower(&q);
        assert_eq!(plan.peak_activation_pair(), q.peak_activation_pair());
    }

    #[test]
    fn dense_streams_verify_against_their_plan() {
        let q = quantized(34);
        let plan = ExecPlan::lower(&q);
        for k in 0..plan.n_convs() {
            let cc = CompiledConv::dense(q.conv(k));
            plan.verify_stream(k, &cc).expect("dense stream verifies");
        }
    }

    // ---- mutation tests: one corrupted plan per invariant class ----

    #[test]
    fn mutation_swapped_layout_flag_fires_layout_chain() {
        let q = quantized(41);
        let mut plan = ExecPlan::lower(&q);
        let pool = plan
            .segments
            .iter_mut()
            .find_map(|s| match s {
                Segment::Pool(p) => Some(p),
                _ => None,
            })
            .expect("zoo model has a pool");
        pool.planar_in = !pool.planar_in;
        assert!(matches!(plan.verify(), Err(PlanError::LayoutChain { .. })));
    }

    #[test]
    fn mutation_dangling_stash_slot_fires_stash_lifetime() {
        let mut plan = resnet_plan();
        let add = plan
            .segments
            .iter_mut()
            .find_map(|s| match s {
                Segment::Add(a) => Some(a),
                _ => None,
            })
            .expect("residual plan has an Add");
        add.slot = 17; // no Stash ever writes slot 17
        assert!(matches!(
            plan.verify(),
            Err(PlanError::StashLifetime { .. })
        ));
    }

    #[test]
    fn mutation_unconsumed_stash_fires_stash_lifetime() {
        let mut plan = resnet_plan();
        // Drop one Add: its slot stays live to the end of the plan.
        let idx = plan
            .segments
            .iter()
            .position(|s| matches!(s, Segment::Add(_)))
            .expect("residual plan has an Add");
        plan.segments.remove(idx);
        assert!(matches!(
            plan.verify(),
            Err(PlanError::StashLifetime { .. }) | Err(PlanError::LayoutChain { .. })
        ));
    }

    #[test]
    fn mutation_undersized_scratch_extent_fires_scratch_extent() {
        let q = quantized(42);
        let base = ExecPlan::lower(&q);
        for field in 0..4 {
            let mut plan = base.clone();
            match field {
                0 => plan.max_act -= 1,
                1 => plan.max_cols -= 1,
                2 => plan.max_pair_colt -= 1,
                _ => plan.max_positions -= 1,
            }
            assert!(
                matches!(plan.verify(), Err(PlanError::ScratchExtent { .. })),
                "field {field}"
            );
        }
    }

    #[test]
    fn mutation_overlapping_checkpoint_range_fires_checkpoint_range() {
        let q = quantized(43);
        let mut plan = ExecPlan::lower(&q);
        assert!(plan.conv_starts.len() >= 2, "need two convs to overlap");
        // Pulling a start backwards makes ordinal 1's range overlap
        // ordinal 0's (and no longer start at a conv).
        plan.conv_starts[1] -= 1;
        assert!(matches!(
            plan.verify(),
            Err(PlanError::CheckpointRange { .. })
        ));
    }

    #[test]
    fn mutation_out_of_bounds_delta_fires_stream() {
        let q = quantized(44);
        let plan = ExecPlan::lower(&q);
        let mut cc = CompiledConv::dense(q.conv(0));
        // Blow the first channel's final entry past the pair-row extent.
        let e = cc.row_offsets[1] as usize;
        assert!(e > 0, "dense channel streams at least one entry");
        cc.deltas[e - 1] = u8::MAX;
        assert!(matches!(
            plan.verify_stream(0, &cc),
            Err(PlanError::Stream { ordinal: 0, .. })
        ));
        // A duplicated index (zero delta past the first entry) also fires.
        let mut cc = CompiledConv::dense(q.conv(0));
        if cc.row_offsets[1] >= 2 {
            cc.deltas[1] = 0;
            assert!(matches!(
                plan.verify_stream(0, &cc),
                Err(PlanError::Stream { .. })
            ));
        }
    }

    #[test]
    fn mutation_overlapping_tile_windows_fire_tile_windows() {
        // Overlap: second window restarts inside the first.
        assert!(matches!(
            check_tile_cover(&[(0, 4), (3, 8)], 8, 0),
            Err(PlanError::TileWindows { .. })
        ));
        // Gap: a lane is covered by no window.
        assert!(matches!(
            check_tile_cover(&[(0, 4), (5, 8)], 8, 0),
            Err(PlanError::TileWindows { .. })
        ));
        // Short cover: the tail of the batch is missing.
        assert!(matches!(
            check_tile_cover(&[(0, 4)], 8, 0),
            Err(PlanError::TileWindows { .. })
        ));
        // The genuine tiling passes.
        check_tile_cover(&[(0, 4), (4, 8)], 8, 0).expect("exact cover");
    }

    #[test]
    fn stream_arity_and_tally_violations_fire_stream() {
        let q = quantized(45);
        let plan = ExecPlan::lower(&q);
        let conv = q.conv(0);
        // Wrong channel count.
        let mut cc = CompiledConv::dense(conv);
        cc.row_offsets.pop();
        cc.retained.pop();
        assert!(matches!(
            plan.verify_stream(0, &cc),
            Err(PlanError::Stream { .. })
        ));
        // Tally exceeding the patch.
        let mut cc = CompiledConv::dense(conv);
        cc.retained[0] = (conv.patch_len() + 1) as u32;
        assert!(matches!(
            plan.verify_stream(0, &cc),
            Err(PlanError::Stream { .. })
        ));
        // Stream out of plan range.
        let cc = CompiledConv::dense(conv);
        assert!(matches!(
            plan.verify_stream(plan.n_convs(), &cc),
            Err(PlanError::Stream { .. })
        ));
    }

    #[test]
    fn plan_error_display_names_the_site() {
        let e = PlanError::LayoutChain {
            segment: 3,
            detail: "x".into(),
        };
        assert!(e.to_string().contains("segment 3"));
        let e = PlanError::Stream {
            ordinal: 1,
            detail: "y".into(),
        };
        assert!(e.to_string().contains("ordinal 1"));
    }
}
