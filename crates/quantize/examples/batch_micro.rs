//! Micro-benchmark of the monolithic batched compiled forward — the
//! serving hot path (`predict_compiled_batch_scratch`) in isolation, at a
//! serve-like small batch and the DSE eval batch.
//!
//! Used to A/B kernel/driver changes without the closed-loop noise of
//! `serve_bench` (run it interleaved against a baseline binary on noisy
//! machines: this path is sensitive to inlining of the column-fill block
//! inside the layer loop).
//!
//! ```sh
//! cargo run -p quantize --release --example batch_micro
//! ```

use quantize::{calibrate_ranges, quantize_model, BatchScratch, CompiledMasks};
use std::time::Instant;

fn main() {
    let mut cfg = cifar10sim::DatasetConfig::paper_default();
    cfg.n_train = 256;
    cfg.n_test = 64;
    cfg.seed = 0x5E12;
    let data = cifar10sim::generate(cfg);
    let model = tinynn::zoo::mini_cifar(0x5E12);
    let ranges = calibrate_ranges(&model, &data.train.take(16));
    let q = quantize_model(&model, &ranges);
    let masks = CompiledMasks::none(q.conv_indices().len());
    for batch in [3usize, 12] {
        let mut flat = Vec::new();
        for i in 0..batch {
            flat.extend(q.quantize_input(data.test.image(i)));
        }
        let mut s = BatchScratch::for_model(&q, batch);
        for _ in 0..20 {
            let _ = q.predict_compiled_batch_scratch(&flat, batch, None, Some(&masks), &mut s);
        }
        let reps = 2000 / batch;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = q.predict_compiled_batch_scratch(&flat, batch, None, Some(&masks), &mut s);
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "batch {batch}: {:.1} img/s ({:.1} us/img)",
            (reps * batch) as f64 / dt,
            1e6 * dt / (reps * batch) as f64
        );
    }
}
