//! End-to-end pipeline integration tests: training → PTQ → significance →
//! DSE → deployment, with the guarantees the paper's user relies on.

use ataman_repro::prelude::*;

fn setup() -> (Sequential, cifar10sim::SyntheticCifar) {
    let data = generate(DatasetConfig::tiny(301));
    let mut m = zoo::mini_cifar(301);
    let mut t = Trainer::new(SgdConfig {
        epochs: 6,
        lr: 0.08,
        ..Default::default()
    });
    t.train(&mut m, &data.train);
    (m, data)
}

#[test]
fn deployed_design_meets_its_accuracy_contract_on_the_dse_set() {
    let (m, data) = setup();
    let fw = Framework::analyze(&m, &data, AtamanConfig::quick());
    let base = fw.dse_report().baseline_accuracy;
    for loss in [0.0f32, 0.05, 0.10] {
        if let Ok(dep) = fw.deploy(loss) {
            assert!(
                dep.dse_accuracy >= base - loss - 1e-6,
                "loss {loss}: design accuracy {} below contract {}",
                dep.dse_accuracy,
                base - loss
            );
        }
    }
}

#[test]
fn approximate_deployment_is_never_slower_than_exact_unpacked() {
    let (m, data) = setup();
    let fw = Framework::analyze(&m, &data, AtamanConfig::quick());
    let q = fw.quant_model();
    let exact_unpacked = UnpackedEngine::new(q, None, UnpackOptions::default());
    let img = vec![0.5f32; q.input_shape.item_len()];
    let exact_cycles = exact_unpacked
        .infer(&img)
        .1
        .cycles(exact_unpacked.cost_model());
    let dep = fw.deploy(0.10).expect("deploys");
    assert!(dep.cycles <= exact_cycles);
}

#[test]
fn cooperative_beats_cmsis_baseline_on_latency() {
    // The headline claim, in miniature: unpacking + skipping at a 10% loss
    // budget must cut latency vs the CMSIS baseline.
    let (m, data) = setup();
    let fw = Framework::analyze(&m, &data, AtamanConfig::quick());
    let board = Board::stm32u575();
    let cmsis = ataman::baseline_cmsis(fw.quant_model(), &data.test, &board);
    let dep = fw.deploy(0.10).expect("deploys");
    assert!(
        dep.latency_ms < cmsis.latency_ms,
        "approximate {} ms !< exact {} ms",
        dep.latency_ms,
        cmsis.latency_ms
    );
}

#[test]
fn dse_pareto_front_is_non_dominated() {
    let (m, data) = setup();
    let fw = Framework::analyze(&m, &data, AtamanConfig::quick());
    let report = fw.dse_report();
    let front = report.front();
    for (i, a) in front.iter().enumerate() {
        for b in &front[i + 1..] {
            let dominates = (a.accuracy >= b.accuracy
                && a.conv_mac_reduction >= b.conv_mac_reduction)
                || (b.accuracy >= a.accuracy && b.conv_mac_reduction >= a.conv_mac_reduction);
            if dominates {
                assert!(
                    !(a.accuracy == b.accuracy && a.conv_mac_reduction == b.conv_mac_reduction),
                    "duplicate points on front"
                );
            }
        }
        // no design anywhere strictly dominates a front member
        for d in &report.designs {
            assert!(
                !(d.accuracy > a.accuracy && d.conv_mac_reduction > a.conv_mac_reduction),
                "front member dominated by ({}, {})",
                d.accuracy,
                d.conv_mac_reduction
            );
        }
    }
}

#[test]
fn deployment_artifacts_are_consistent() {
    let (m, data) = setup();
    let fw = Framework::analyze(&m, &data, AtamanConfig::quick());
    let dep = fw.deploy(0.05).expect("deploys");
    // C code SMLAD count equals the op-stream SMLAD instruction count.
    let masks = fw.significance().masks_for_tau(fw.quant_model(), &dep.taus);
    let engine = UnpackedEngine::new(fw.quant_model(), Some(&masks), fw.config().unpack);
    let expected: u64 = engine.convs().iter().map(|c| c.smlad_instructions()).sum();
    assert_eq!(dep.c_code.matches("__SMLAD").count() as u64, expected);
    // flash layout equals the layout computed from the same streams
    let layout = unpackgen::unpacked_flash_layout(fw.quant_model(), engine.convs());
    assert_eq!(dep.flash, layout);
}

#[test]
fn pipeline_handles_all_layers_skipped_gracefully() {
    // Failure injection: force masks that skip *everything* and verify the
    // engine still runs (bias-only conv outputs) and accuracy collapses
    // toward chance instead of panicking.
    let (m, data) = setup();
    let ranges = calibrate_ranges(&m, &data.train.take(8));
    let q = quantize_model(&m, &ranges);
    let n = q.conv_indices().len();
    let mut masks = SkipMaskSet::none(n);
    for k in 0..n {
        let c = q.conv(k);
        masks.per_conv[k] = Some(vec![true; c.geom.out_c * c.patch_len()]);
    }
    let engine = UnpackedEngine::new(&q, Some(&masks), UnpackOptions::default());
    let (logits, stats) = engine.infer(data.test.image(0));
    assert_eq!(logits.len(), 10);
    // all conv MACs gone; only dense MACs remain
    let dense: u64 = q
        .layers
        .iter()
        .map(|l| match l {
            quantize::QLayer::Dense(d) => (d.in_dim * d.out_dim) as u64,
            _ => 0,
        })
        .sum();
    assert_eq!(stats.macs, dense);
}
