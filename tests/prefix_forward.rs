//! Property tests for the prefix-sharing DSE evaluator: for any random
//! model, any τ grid (including duplicate and single-config grids), any
//! batch size and any ragged final batch,
//!
//! 1. the checkpoint-resumed segment forward must be bit-exact with the
//!    monolithic batched forward (and hence, transitively via
//!    `batched_forward.rs` / `compiled_masks.rs`, with the boolean-mask
//!    reference), and
//! 2. the trie-ordered `dse::explore` must produce field-identical
//!    [`dse::EvaluatedDesign`]s to the uncached boolean-mask
//!    `dse::explore_reference`, **in the same order as the input configs**.

use dse::{explore, explore_independent, explore_reference, ExploreOptions};
use proptest::prelude::*;
use quantize::{
    calibrate_ranges, quantize_model, BatchCheckpoint, BatchScratch, CompiledMasks, QuantModel,
    SkipMaskSet,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use signif::{capture_mean_inputs, SignificanceMap, TauAssignment};
use tinynn::Sequential;
use tinytensor::Shape4;

/// Build a small random CNN: 1-3 conv(+relu) layers, pool, dense.
fn random_model(seed: u64, convs: usize, width: usize, kernel: usize) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new("prefix", Shape4::nhwc(1, 8, 8, 2));
    for _ in 0..convs {
        m = m.conv_relu(width, kernel, &mut rng);
    }
    m = m.maxpool();
    m.dense(4, true, &mut rng)
}

/// Quantize against a tiny synthetic calibration set; returns eval images.
fn quantized(model: &Sequential, seed: u64, n: usize) -> (QuantModel, cifar10sim::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
    let len = 8 * 8 * 2;
    let mut flat = Vec::with_capacity(n * len);
    for _ in 0..n * len {
        flat.push(rng.gen_range(0.0f32..1.0));
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(rng.gen_range(0u8..4));
    }
    let ds = cifar10sim::Dataset {
        images: tinytensor::Tensor::from_vec(Shape4::nhwc(n, 8, 8, 2), flat).unwrap(),
        labels,
    };
    let ranges = calibrate_ranges(model, &ds);
    let q = quantize_model(model, &ranges);
    (q, ds)
}

fn stacked(q: &QuantModel, ds: &cifar10sim::Dataset, n: usize) -> Vec<i8> {
    let mut flat = Vec::new();
    for i in 0..n {
        flat.extend(q.quantize_input(ds.image(i)));
    }
    flat
}

/// Draw one τ level per conv layer from a small palette (including `None`
/// = exact and repeated values, so tries get both sharing and branching).
fn tau_level(choice: u8) -> Option<f64> {
    match choice % 5 {
        0 => None,
        1 => Some(0.0),
        2 => Some(0.01),
        3 => Some(0.05),
        _ => Some(0.2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoint-resumed execution (with and without node-shared
    /// prefilled columns) equals the monolithic batched forward for every
    /// batch split of the image set.
    #[test]
    fn checkpoint_segments_equal_monolithic_batched(
        seed in 0u64..5000,
        convs in 1usize..4,
        width in 2usize..5,
        kernel in prop::sample::select(vec![1usize, 3]),
        skip_mod in 2u64..9,
        batch in 1usize..8,
    ) {
        let model = random_model(seed, convs, width, kernel);
        let n_images = 7; // prime: batch sizes 2..=6 leave a ragged tail
        let (q, ds) = quantized(&model, seed, n_images);
        let n = q.conv_indices().len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
        let mut masks = SkipMaskSet::none(n);
        for k in 0..n {
            let c = q.conv(k);
            let len = c.geom.out_c * c.patch_len();
            masks.per_conv[k] =
                Some((0..len).map(|_| rng.gen_range(0u64..skip_mod) == 0).collect());
        }
        let compiled = CompiledMasks::compile(&q, &masks);
        let in_len = q.input_shape.item_len();
        let mut bs = BatchScratch::for_model(&q, batch.min(n_images));

        let mut start = 0usize;
        while start < n_images {
            let b = batch.min(n_images - start);
            let flat = stacked(&q, &ds, n_images);
            let flat = &flat[start * in_len..(start + b) * in_len];
            let want = q.predict_compiled_batch_scratch(flat, b, None, Some(&compiled), &mut bs);

            for prefill in [false, true] {
                let mut cur = q.batch_start(flat, b, &mut bs);
                let mut next = BatchCheckpoint::empty();
                let mut cols = Vec::new();
                while let Some(k) = cur.next_conv_ordinal() {
                    let pc = if prefill {
                        q.batch_fill_conv_cols(&cur, &mut bs, &mut cols);
                        Some(&cols[..])
                    } else {
                        None
                    };
                    q.batch_advance_into(
                        &cur, compiled.per_conv[k].as_ref(), pc, &mut bs, &mut next,
                    );
                    std::mem::swap(&mut cur, &mut next);
                }
                prop_assert!(cur.is_complete());
                let mut preds = Vec::new();
                q.batch_checkpoint_predictions_into(&cur, &mut preds);
                prop_assert_eq!(
                    &preds, &want,
                    "start {} size {} prefill {}", start, b, prefill
                );
            }
            start += b;
        }
    }

    /// The trie-ordered `explore` equals the boolean-mask
    /// `explore_reference` and the per-design `explore_independent`
    /// field-for-field and in config order, over random per-layer τ grids
    /// with duplicates and single-config degenerate grids.
    #[test]
    fn trie_explore_equals_reference_explore(
        seed in 0u64..5000,
        convs in 1usize..4,
        width in 2usize..5,
        grid0 in prop::collection::vec(0u8..255, 1..5),
        grid1 in prop::collection::vec(0u8..255, 1..4),
        dup in any::<bool>(),
        eval_images in 3usize..8,
    ) {
        let model = random_model(seed, convs, width, 3);
        let (q, ds) = quantized(&model, seed, 8);
        let n = q.conv_indices().len();
        let means = capture_mean_inputs(&q, &ds);
        let sig = SignificanceMap::compute(&q, &means);

        // Cartesian per-layer grid: layer 0 sweeps grid0, the remaining
        // layers sweep grid1 jointly — shared prefixes plus branching.
        let mut configs = Vec::new();
        for &c0 in &grid0 {
            for &c1 in &grid1 {
                let mut per = vec![tau_level(c1); n];
                per[0] = tau_level(c0);
                configs.push(TauAssignment::per_layer(per));
            }
        }
        if dup {
            let first = configs[0].clone();
            configs.push(first);
        }
        let opts = ExploreOptions { eval_images, ..Default::default() };

        let fast = explore(&q, &sig, &ds, &configs, &opts);
        let indep = explore_independent(&q, &sig, &ds, &configs, &opts);
        let slow = explore_reference(&q, &sig, &ds, &configs, &opts);
        prop_assert_eq!(fast.len(), configs.len());
        for (i, ((a, b), c)) in fast.iter().zip(&slow).zip(&indep).enumerate() {
            prop_assert_eq!(&a.taus, &configs[i], "order broken at {}", i);
            prop_assert_eq!(a.accuracy, b.accuracy, "config {}", i);
            prop_assert_eq!(a.est_cycles, b.est_cycles, "config {}", i);
            prop_assert_eq!(a.est_flash, b.est_flash, "config {}", i);
            prop_assert_eq!(a.retained_macs, b.retained_macs, "config {}", i);
            prop_assert_eq!(a.conv_mac_reduction, b.conv_mac_reduction, "config {}", i);
            prop_assert_eq!(a.skipped_products, b.skipped_products, "config {}", i);
            prop_assert_eq!(a.accuracy, c.accuracy, "indep config {}", i);
            prop_assert_eq!(a.est_cycles, c.est_cycles, "indep config {}", i);
        }
    }
}

/// Single-config grids (the degenerate trie) and duplicate-only grids.
#[test]
fn degenerate_grids_match_reference() {
    let model = random_model(99, 2, 3, 3);
    let (q, ds) = quantized(&model, 99, 6);
    let means = capture_mean_inputs(&q, &ds);
    let sig = SignificanceMap::compute(&q, &means);
    let opts = ExploreOptions {
        eval_images: 6,
        ..Default::default()
    };
    for configs in [
        vec![TauAssignment::global(0.02)],
        vec![TauAssignment::global(0.02); 3],
    ] {
        let fast = explore(&q, &sig, &ds, &configs, &opts);
        let slow = explore_reference(&q, &sig, &ds, &configs, &opts);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.accuracy, b.accuracy);
            assert_eq!(a.est_cycles, b.est_cycles);
            assert_eq!(a.est_flash, b.est_flash);
        }
    }
}
