//! Cross-engine bit-exactness — the core correctness invariant of the
//! reproduction (see DESIGN.md "Quantization semantics").
//!
//! All four interpretations of a quantized model must agree bit-for-bit
//! when no skipping is applied, and the unpacked engine must agree with the
//! masked reference for any mask.

use ataman_repro::prelude::*;

fn trained_quant(seed: u64) -> (QuantModel, cifar10sim::SyntheticCifar) {
    let data = generate(DatasetConfig::tiny(seed));
    let mut m = zoo::mini_cifar(seed);
    let mut t = Trainer::new(SgdConfig {
        epochs: 3,
        ..Default::default()
    });
    t.train(&mut m, &data.train);
    let ranges = calibrate_ranges(&m, &data.train.take(16));
    (quantize_model(&m, &ranges), data)
}

#[test]
fn four_engines_bit_exact_on_exact_models() {
    let (q, data) = trained_quant(201);
    let cmsis = CmsisEngine::new(&q);
    let xcube = XCubeEngine::new(&q);
    let unpacked = UnpackedEngine::new(&q, None, UnpackOptions::default());
    for i in 0..25 {
        let img = data.test.image(i);
        let reference = q.forward(img);
        assert_eq!(cmsis.infer(img).0, reference, "cmsis, image {i}");
        assert_eq!(xcube.infer(img).0, reference, "xcube, image {i}");
        assert_eq!(unpacked.infer(img).0, reference, "unpacked, image {i}");
    }
}

#[test]
fn unpacked_zero_weight_dropping_stays_bit_exact() {
    // Dropping w == 0 products changes the instruction stream but cannot
    // change any output value.
    let (q, data) = trained_quant(202);
    let keep = UnpackedEngine::new(&q, None, UnpackOptions::default());
    let drop = UnpackedEngine::new(
        &q,
        None,
        UnpackOptions {
            drop_zero_weights: true,
            col_block: 4,
        },
    );
    for i in 0..15 {
        let img = data.test.image(i);
        assert_eq!(keep.infer(img).0, drop.infer(img).0, "image {i}");
    }
    assert!(drop.retained_macs() <= keep.retained_macs());
}

#[test]
fn masked_unpacked_matches_masked_reference_for_random_masks() {
    let (q, data) = trained_quant(203);
    let n = q.conv_indices().len();
    for trial in 0..4u64 {
        let mut masks = SkipMaskSet::none(n);
        for k in 0..n {
            let c = q.conv(k);
            let len = c.geom.out_c * c.patch_len();
            let mask: Vec<bool> = (0..len)
                .map(|i| ((i as u64).wrapping_mul(trial * 2 + 3) % 7) < trial)
                .collect();
            masks.per_conv[k] = Some(mask);
        }
        let engine = UnpackedEngine::new(&q, Some(&masks), UnpackOptions::default());
        for i in 0..8 {
            let img = data.test.image(i);
            let want = q.forward_quantized(&q.quantize_input(img), Some(&masks));
            assert_eq!(engine.infer(img).0, want, "trial {trial}, image {i}");
        }
    }
}

#[test]
fn significance_masks_round_trip_through_all_apis() {
    // Masks derived from significance must produce identical outputs via
    // the reference path and the deployed engine path.
    let (q, data) = trained_quant(204);
    let means = capture_mean_inputs(&q, &data.train.take(16));
    let sig = SignificanceMap::compute(&q, &means);
    let masks = sig.masks_for_tau(&q, &TauAssignment::global(0.03));
    let engine = UnpackedEngine::new(&q, Some(&masks), UnpackOptions::default());
    let acc_ref = q.accuracy(&data.test, Some(&masks));
    let correct = (0..data.test.len())
        .filter(|&i| engine.predict(data.test.image(i)) == data.test.labels[i] as usize)
        .count();
    let acc_engine = correct as f32 / data.test.len() as f32;
    assert_eq!(acc_ref, acc_engine);
}
