//! Intra-batch parallel execution is **bit-exact** with serial execution:
//! for any random model (chains over every head shape, and residual DAGs
//! with skip edges at varying depths), any random skip masks, any batch
//! split (ragged tails included) and any pool width in {1, 2, 4}, a
//! [`BatchScratch`] carrying a [`BatchPool`] must produce byte-identical
//! outputs to the serial scratch — including through the resumable
//! checkpoint chain, whose sequential cuts sit exactly at checkpoint
//! boundaries.
//!
//! The argument the property checks: tiles partition *lanes* (images ×
//! positions), not the per-channel retained-product streams, so every
//! output element's accumulation walks the same stream in the same order
//! whatever the tiling or thread count; add/pool partitions write
//! disjoint elements with unchanged per-element arithmetic. Wrapping i32
//! adds commute, so any regrouping is exact — but this suite is the
//! enforcement, not the prose.

use ataman_repro::prelude::*;
use proptest::prelude::*;
use quantize::{BatchPool, BatchScratch, CompiledMasks};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinytensor::Shape4;

/// Small random CNN over 8×8×2 inputs; `head` picks the tail shape
/// (pool/GAP/dense epilogues — same coverage as `engine_equivalence`).
fn random_model(seed: u64, convs: usize, width: usize, kernel: usize, head: u8) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new("par", Shape4::nhwc(1, 8, 8, 2));
    for _ in 0..convs {
        m = m.conv_relu(width, kernel, &mut rng);
    }
    match head % 6 {
        0 => m.maxpool().dense(4, true, &mut rng),
        1 => m.global_avg_pool().dense(4, true, &mut rng),
        2 => m.maxpool().global_avg_pool().dense(4, true, &mut rng),
        3 => m.dense(4, true, &mut rng),
        4 => m.global_avg_pool(),
        _ => m.maxpool(),
    }
}

/// Small random residual CNN; `stem` 0 joins the raw-input stash against
/// a planar branch (the mixed-layout Add), `stem` 1 keeps joins
/// planar/planar.
fn random_residual_model(
    seed: u64,
    width: usize,
    stem: u8,
    blocks: usize,
    block_convs: usize,
) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new("rpar", Shape4::nhwc(1, 8, 8, 2));
    let c = if stem % 2 == 1 {
        m = m.conv_relu(width, 3, &mut rng);
        width
    } else {
        2
    };
    for _ in 0..blocks {
        m = m.residual(|mut b| {
            for _ in 0..block_convs.saturating_sub(1) {
                b = b.conv_relu(c, 3, &mut rng);
            }
            b.conv(c, 3, &mut rng)
        });
    }
    m.global_avg_pool().dense(4, true, &mut rng)
}

fn quantized(model: &Sequential, seed: u64, n: usize) -> (QuantModel, cifar10sim::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let len = 8 * 8 * 2;
    let flat: Vec<f32> = (0..n * len).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    let labels: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..4)).collect();
    let ds = cifar10sim::Dataset {
        images: tinytensor::Tensor::from_vec(Shape4::nhwc(n, 8, 8, 2), flat).unwrap(),
        labels,
    };
    let ranges = calibrate_ranges(model, &ds);
    let q = quantize_model(model, &ranges);
    (q, ds)
}

fn random_masks(q: &QuantModel, seed: u64, skip_mod: u64) -> SkipMaskSet {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
    let n = q.conv_indices().len();
    let mut masks = SkipMaskSet::none(n);
    for k in 0..n {
        let c = q.conv(k);
        let len = c.geom.out_c * c.patch_len();
        masks.per_conv[k] = Some(
            (0..len)
                .map(|_| rng.gen_range(0u64..skip_mod) == 0)
                .collect(),
        );
    }
    masks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chain models, every head shape, every ragged batch split: the
    /// pooled scratch's outputs are byte-identical to the serial
    /// scratch's.
    #[test]
    fn parallel_equals_serial_for_any_model_and_split(
        seed in 0u64..5000,
        convs in 1usize..3,
        width in 2usize..5,
        kernel in prop::sample::select(vec![1usize, 3]),
        head in 0u8..6,
        skip_mod in 2u64..9,
        batch in 1usize..8,
        threads in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let model = random_model(seed, convs, width, kernel, head);
        let n_images = 7; // prime: batch sizes 2..=6 leave a ragged tail
        let (q, ds) = quantized(&model, seed, n_images);
        let masks = random_masks(&q, seed, skip_mod);
        let compiled = CompiledMasks::compile(&q, &masks);
        let in_len = q.input_shape.item_len();
        let qinputs: Vec<Vec<i8>> =
            (0..n_images).map(|i| q.quantize_input(ds.image(i))).collect();

        let cap = batch.min(n_images);
        let mut serial = BatchScratch::for_model(&q, cap);
        let mut parallel = BatchScratch::for_model(&q, cap);
        parallel.set_pool(Some(BatchPool::new(threads)));

        let mut start = 0usize;
        while start < n_images {
            let b = cap.min(n_images - start);
            let mut flat = Vec::with_capacity(b * in_len);
            for qin in &qinputs[start..start + b] {
                flat.extend_from_slice(qin);
            }
            let want =
                q.forward_compiled_batch_scratch(&flat, b, None, Some(&compiled), &mut serial);
            let got =
                q.forward_compiled_batch_scratch(&flat, b, None, Some(&compiled), &mut parallel);
            prop_assert_eq!(&got, &want, "start {} size {} threads {}", start, b, threads);
            start += b;
        }
    }

    /// Residual DAGs and the resumable checkpoint chain: a pooled scratch
    /// advancing checkpoint-by-checkpoint (prefilled columns on alternate
    /// ordinals) lands on the serial monolithic predictions.
    #[test]
    fn parallel_residual_checkpoint_chain_equals_serial(
        seed in 0u64..5000,
        width in 2usize..5,
        stem in 0u8..2,
        blocks in 1usize..3,
        block_convs in 1usize..3,
        skip_mod in 2u64..9,
        batch in 1usize..6,
        threads in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let model = random_residual_model(seed, width, stem, blocks, block_convs);
        let (q, ds) = quantized(&model, seed, batch);
        let masks = random_masks(&q, seed, skip_mod);
        let compiled = CompiledMasks::compile(&q, &masks);
        let mut flat = Vec::new();
        for i in 0..batch {
            flat.extend(q.quantize_input(ds.image(i)));
        }

        let mut serial = BatchScratch::for_model(&q, batch);
        let want =
            q.predict_compiled_batch_scratch(&flat, batch, None, Some(&compiled), &mut serial);

        let mut bs = BatchScratch::for_model(&q, batch);
        bs.set_pool(Some(BatchPool::new(threads)));
        let got =
            q.predict_compiled_batch_scratch(&flat, batch, None, Some(&compiled), &mut bs);
        prop_assert_eq!(&got, &want, "monolithic, threads {}", threads);

        // Checkpoint-resume mid-plan: the sequential cut is *at* the
        // checkpoint boundary, so each advance may parallelize internally
        // while the chain's semantics stay those of the serial walk.
        let mut cur = q.batch_start(&flat, batch, &mut bs);
        let mut next = quantize::BatchCheckpoint::empty();
        let mut cols = Vec::new();
        while let Some(k) = cur.next_conv_ordinal() {
            let prefilled: Option<&[i16]> = if k % 2 == 0 {
                q.batch_fill_conv_cols(&cur, &mut bs, &mut cols);
                Some(&cols)
            } else {
                None
            };
            q.batch_advance_into(
                &cur,
                compiled.per_conv[k].as_ref(),
                prefilled,
                &mut bs,
                &mut next,
            );
            std::mem::swap(&mut cur, &mut next);
        }
        prop_assert!(cur.is_complete());
        let mut preds = Vec::new();
        q.batch_checkpoint_predictions_into(&cur, &mut preds);
        prop_assert_eq!(&preds, &want, "checkpoint chain, threads {}", threads);
    }
}
