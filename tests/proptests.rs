//! Workspace-level property tests: random models, random masks, random
//! design clouds — the invariants must hold for *any* of them.

use proptest::prelude::*;
use quantize::{calibrate_ranges, quantize_model, QuantModel, SkipMaskSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tinynn::Sequential;
use tinytensor::Shape4;
use unpackgen::{UnpackOptions, UnpackedEngine};

/// Build a small random CNN: 1-2 conv(+relu) layers, optional pool, dense.
fn random_model(seed: u64, convs: usize, width: usize, kernel: usize) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new("prop", Shape4::nhwc(1, 8, 8, 2));
    for _ in 0..convs {
        m = m.conv_relu(width, kernel, &mut rng);
    }
    m = m.maxpool();
    m.dense(4, true, &mut rng)
}

/// Quantize against a tiny synthetic calibration set.
fn quantized(model: &Sequential, seed: u64) -> (QuantModel, Vec<Vec<f32>>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
    use rand::Rng;
    let n = 6;
    let len = 8 * 8 * 2;
    let mut flat = Vec::with_capacity(n * len);
    for _ in 0..n * len {
        flat.push(rng.gen_range(0.0f32..1.0));
    }
    let ds = cifar10sim::Dataset {
        images: tinytensor::Tensor::from_vec(Shape4::nhwc(n, 8, 8, 2), flat).unwrap(),
        labels: vec![0; n],
    };
    let ranges = calibrate_ranges(model, &ds);
    let q = quantize_model(model, &ranges);
    let imgs = (0..n).map(|i| ds.image(i).to_vec()).collect();
    (q, imgs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any random model and any random mask, the unpacked engine equals
    /// the masked reference bit-for-bit.
    #[test]
    fn unpacked_equals_reference_for_any_mask(
        seed in 0u64..5000,
        convs in 1usize..3,
        width in 2usize..6,
        kernel in prop::sample::select(vec![1usize, 3]),
        skip_mod in 2u64..9,
    ) {
        let model = random_model(seed, convs, width, kernel);
        let (q, imgs) = quantized(&model, seed);
        let n = q.conv_indices().len();
        let mut masks = SkipMaskSet::none(n);
        for k in 0..n {
            let c = q.conv(k);
            let len = c.geom.out_c * c.patch_len();
            masks.per_conv[k] = Some(
                (0..len).map(|i| (i as u64).wrapping_mul(seed | 1).is_multiple_of(skip_mod)).collect(),
            );
        }
        let engine = UnpackedEngine::new(&q, Some(&masks), UnpackOptions::default());
        for img in &imgs {
            let want = q.forward_quantized(&q.quantize_input(img), Some(&masks));
            prop_assert_eq!(engine.infer(img).0, want);
        }
    }

    /// Cycles and flash are monotone non-increasing in the skip set.
    #[test]
    fn cost_monotone_in_skipping(seed in 0u64..5000, frac_a in 0usize..5, extra in 1usize..5) {
        let model = random_model(seed, 2, 4, 3);
        let (q, _) = quantized(&model, seed);
        let n = q.conv_indices().len();
        let frac_b = frac_a + extra; // strictly larger skip set
        let build = |num: usize| {
            let mut masks = SkipMaskSet::none(n);
            for k in 0..n {
                let c = q.conv(k);
                let len = c.geom.out_c * c.patch_len();
                masks.per_conv[k] =
                    Some((0..len).map(|i| (i * 31 + 7) % 10 < num).collect());
            }
            masks
        };
        let (ma, mb) = (build(frac_a), build(frac_b));
        let opts = UnpackOptions::default();
        let sa = dse::estimate_stats(&q, Some(&ma), opts);
        let sb = dse::estimate_stats(&q, Some(&mb), opts);
        let cost = mcusim::CostModel::cortex_m33();
        prop_assert!(sb.cycles(&cost) <= sa.cycles(&cost));
        prop_assert!(sb.macs <= sa.macs);
        prop_assert!(
            dse::estimate_flash(&q, Some(&mb), opts) <= dse::estimate_flash(&q, Some(&ma), opts)
        );
    }

    /// The exact engines (reference, CMSIS, X-CUBE, unpacked) agree on any
    /// random model and input.
    #[test]
    fn engines_agree_on_random_models(seed in 0u64..5000, width in 2usize..6) {
        let model = random_model(seed, 1, width, 3);
        let (q, imgs) = quantized(&model, seed);
        let cmsis = cmsisnn::CmsisEngine::new(&q);
        let xcube = xcubeai::XCubeEngine::new(&q);
        let unpacked = UnpackedEngine::new(&q, None, UnpackOptions::default());
        for img in imgs.iter().take(3) {
            let want = q.forward(img);
            prop_assert_eq!(cmsis.infer(img).0, want.clone());
            prop_assert_eq!(xcube.infer(img).0, want.clone());
            prop_assert_eq!(unpacked.infer(img).0, want);
        }
    }

    /// Pareto front: every non-front design is dominated by some front
    /// member; no front member is dominated by anything.
    #[test]
    fn pareto_front_sound_and_complete(points in prop::collection::vec((0.0f32..1.0, 0.0f64..1.0), 1..60)) {
        use dse::EvaluatedDesign;
        use signif::TauAssignment;
        let designs: Vec<EvaluatedDesign> = points
            .iter()
            .map(|&(acc, red)| EvaluatedDesign {
                taus: TauAssignment::global(0.0),
                accuracy: acc,
                retained_macs: 0,
                conv_mac_reduction: red,
                est_cycles: 1,
                est_flash: 1,
                skipped_products: 0,
            })
            .collect();
        let front = dse::pareto_front(&designs);
        prop_assert!(!front.is_empty());
        let dominated = |a: &EvaluatedDesign, b: &EvaluatedDesign| {
            b.accuracy >= a.accuracy
                && b.conv_mac_reduction >= a.conv_mac_reduction
                && (b.accuracy > a.accuracy || b.conv_mac_reduction > a.conv_mac_reduction)
        };
        for &i in &front {
            for d in &designs {
                prop_assert!(!dominated(&designs[i], d), "front member dominated");
            }
        }
        for (i, d) in designs.iter().enumerate() {
            if !front.contains(&i) {
                let covered = front.iter().any(|&f| {
                    designs[f].accuracy >= d.accuracy
                        && designs[f].conv_mac_reduction >= d.conv_mac_reduction
                });
                prop_assert!(covered, "non-front design not covered by the front");
            }
        }
    }
}
