//! Static-verification property: for **any** random model in the open
//! layer set — chain CNNs over every head shape, residual CNNs over every
//! stem/block shape — lowering produces an [`quantize::ExecPlan`] that
//! passes the full `verify()` pass, and every compiled mask stream passes
//! `verify_stream` against that plan.
//!
//! This is the acceptance property of the plan verifier: the verifier
//! rejects the six mutation classes (unit tests in `quantize::plan::verify`
//! corrupt plans field-by-field) while accepting everything the lowering
//! actually emits. A false positive here would panic every debug-mode
//! lowering in the workspace, so the property doubles as the verifier's
//! own soundness gate.

use ataman_repro::prelude::*;
use proptest::prelude::*;
use quantize::{CompiledMasks, ExecPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinytensor::Shape4;

/// Random chain CNN over 8×8×2 inputs; `head` sweeps every tail shape the
/// lowering can emit (pool/GAP/dense epilogues, planar and NHWC endings).
fn random_model(seed: u64, convs: usize, width: usize, kernel: usize, head: u8) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new("pv", Shape4::nhwc(1, 8, 8, 2));
    for _ in 0..convs {
        m = m.conv_relu(width, kernel, &mut rng);
    }
    match head % 6 {
        0 => m.maxpool().dense(4, true, &mut rng),
        1 => m.global_avg_pool().dense(4, true, &mut rng),
        2 => m.maxpool().global_avg_pool().dense(4, true, &mut rng),
        3 => m.dense(4, true, &mut rng),
        4 => m.global_avg_pool(),
        _ => m.maxpool(),
    }
}

/// Random residual CNN; `stem` 0 stashes the NHWC model input (the
/// mixed-layout join the verifier's layout walk must accept), `stem` 1
/// makes every join planar/planar.
fn random_residual_model(
    seed: u64,
    width: usize,
    stem: u8,
    blocks: usize,
    block_convs: usize,
    head: u8,
) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new("pvr", Shape4::nhwc(1, 8, 8, 2));
    let c = if stem % 2 == 1 {
        m = m.conv_relu(width, 3, &mut rng);
        width
    } else {
        2
    };
    for _ in 0..blocks {
        m = m.residual(|mut b| {
            for _ in 0..block_convs.saturating_sub(1) {
                b = b.conv_relu(c, 3, &mut rng);
            }
            b.conv(c, 3, &mut rng)
        });
    }
    match head % 3 {
        0 => m.dense(4, true, &mut rng),
        1 => m.global_avg_pool().dense(4, true, &mut rng),
        _ => m.maxpool().global_avg_pool().dense(4, true, &mut rng),
    }
}

fn quantized(model: &Sequential, seed: u64) -> QuantModel {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let n = 4;
    let len = 8 * 8 * 2;
    let flat: Vec<f32> = (0..n * len).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    let ds = cifar10sim::Dataset {
        images: tinytensor::Tensor::from_vec(Shape4::nhwc(n, 8, 8, 2), flat).unwrap(),
        labels: vec![0; n],
    };
    let ranges = calibrate_ranges(model, &ds);
    quantize_model(model, &ranges)
}

fn random_masks(q: &QuantModel, seed: u64, skip_mod: u64) -> SkipMaskSet {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
    let n = q.conv_indices().len();
    let mut masks = SkipMaskSet::none(n);
    for k in 0..n {
        let c = q.conv(k);
        let len = c.geom.out_c * c.patch_len();
        masks.per_conv[k] = Some(
            (0..len)
                .map(|_| rng.gen_range(0u64..skip_mod) == 0)
                .collect(),
        );
    }
    masks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every chain model the generator can produce lowers to a plan the
    /// verifier accepts, with plan-side peak accounting agreeing with the
    /// model-side definition.
    #[test]
    fn chain_models_lower_to_verified_plans(
        seed in 0u64..5000,
        convs in 1usize..4,
        width in 2usize..6,
        kernel in prop::sample::select(vec![1usize, 3]),
        head in 0u8..6,
    ) {
        let model = random_model(seed, convs, width, kernel, head);
        let q = quantized(&model, seed);
        let plan = ExecPlan::lower(&q);
        prop_assert_eq!(plan.verify(), Ok(()));
        prop_assert_eq!(plan.peak_activation_pair(), q.peak_activation_pair());
    }

    /// Every residual model — including input-stash mixed-layout joins and
    /// nested blocks — lowers to a verified plan.
    #[test]
    fn residual_models_lower_to_verified_plans(
        seed in 0u64..5000,
        width in 2usize..6,
        stem in 0u8..2,
        blocks in 1usize..3,
        block_convs in 1usize..3,
        head in 0u8..3,
    ) {
        let model = random_residual_model(seed, width, stem, blocks, block_convs, head);
        let q = quantized(&model, seed);
        let plan = ExecPlan::lower(&q);
        prop_assert_eq!(plan.verify(), Ok(()));
        prop_assert_eq!(plan.peak_activation_pair(), q.peak_activation_pair());
    }

    /// Every compiled mask stream the compiler emits passes the plan's
    /// per-stream validation (span table shape, delta monotonicity and
    /// bounds, retained/zero-half payload consistency).
    #[test]
    fn compiled_mask_streams_verify_against_the_plan(
        seed in 0u64..5000,
        convs in 1usize..3,
        width in 2usize..6,
        stem in 0u8..2,
        residual in any::<bool>(),
        skip_mod in 2u64..9,
    ) {
        let model = if residual {
            random_residual_model(seed, width, stem, 1, convs, 1)
        } else {
            random_model(seed, convs, width, 3, 0)
        };
        let q = quantized(&model, seed);
        let plan = ExecPlan::lower(&q);
        let masks = random_masks(&q, seed, skip_mod);
        let compiled = CompiledMasks::compile(&q, &masks);
        for (ordinal, cc) in compiled.per_conv.iter().enumerate() {
            if let Some(cc) = cc {
                prop_assert_eq!(plan.verify_stream(ordinal, cc), Ok(()));
            }
        }
    }
}
