//! Reproducibility guarantees: every stage is a pure function of its seeds,
//! independent of thread count and repetition.

use ataman_repro::prelude::*;

#[test]
fn dataset_training_quantization_chain_is_deterministic() {
    let run = || {
        let data = generate(DatasetConfig::tiny(401));
        let mut m = zoo::mini_cifar(401);
        let mut t = Trainer::new(SgdConfig {
            epochs: 2,
            ..Default::default()
        });
        t.train(&mut m, &data.train);
        let ranges = calibrate_ranges(&m, &data.train.take(16));
        let q = quantize_model(&m, &ranges);
        let logits = q.forward(data.test.image(0));
        (q.macs(), logits)
    };
    let (macs_a, logits_a) = run();
    let (macs_b, logits_b) = run();
    assert_eq!(macs_a, macs_b);
    assert_eq!(logits_a, logits_b);
}

#[test]
fn dse_is_thread_count_independent() {
    // Run the same exploration under two rayon pools of different sizes;
    // results must match exactly.
    let data = generate(DatasetConfig::tiny(402));
    let mut m = zoo::mini_cifar(402);
    Trainer::new(SgdConfig {
        epochs: 2,
        ..Default::default()
    })
    .train(&mut m, &data.train);
    let ranges = calibrate_ranges(&m, &data.train.take(8));
    let q = quantize_model(&m, &ranges);
    let means = capture_mean_inputs(&q, &data.train.take(8));
    let sig = SignificanceMap::compute(&q, &means);
    let configs: Vec<TauAssignment> = [0.0, 0.01, 0.05]
        .iter()
        .map(|&t| TauAssignment::global(t))
        .collect();
    let opts = dse::ExploreOptions {
        eval_images: 24,
        ..Default::default()
    };

    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| dse::explore(&q, &sig, &data.test, &configs, &opts))
    };
    let one = run_with(1);
    let many = run_with(4);
    assert_eq!(one.len(), many.len());
    for (a, b) in one.iter().zip(&many) {
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.est_cycles, b.est_cycles);
        assert_eq!(a.retained_macs, b.retained_macs);
    }
}

#[test]
fn significance_capture_thread_count_independent() {
    let data = generate(DatasetConfig::tiny(403));
    let mut m = zoo::mini_cifar(403);
    Trainer::new(SgdConfig {
        epochs: 1,
        ..Default::default()
    })
    .train(&mut m, &data.train);
    let ranges = calibrate_ranges(&m, &data.train.take(8));
    let q = quantize_model(&m, &ranges);
    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| capture_mean_inputs(&q, &data.train.take(16)))
    };
    assert_eq!(run_with(1), run_with(3));
}

#[test]
fn training_thread_count_independent() {
    let data = generate(DatasetConfig::tiny(404));
    let run_with = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut m = zoo::micro(404);
            // micro takes 8x8x2 inputs; train on a resized slice dataset is
            // overkill here — use mini_cifar on the real data instead.
            let mut mc = zoo::mini_cifar(404);
            Trainer::new(SgdConfig {
                epochs: 1,
                ..Default::default()
            })
            .train(&mut mc, &data.train);
            let _ = &mut m;
            mc
        })
    };
    let a = run_with(1);
    let b = run_with(4);
    for (la, lb) in a.layers.iter().zip(&b.layers) {
        if let (tinynn::Layer::Conv(x), tinynn::Layer::Conv(y)) = (la, lb) {
            assert_eq!(x.weights, y.weights, "training depends on thread count");
        }
    }
}
