//! Board-budget failure injection through the full framework path.

use ataman_repro::prelude::*;

fn trained(seed: u64) -> (Sequential, cifar10sim::SyntheticCifar) {
    let data = generate(DatasetConfig::tiny(seed));
    let mut m = zoo::mini_cifar(seed);
    let mut t = Trainer::new(SgdConfig {
        epochs: 3,
        ..Default::default()
    });
    t.train(&mut m, &data.train);
    (m, data)
}

#[test]
fn deployment_refused_when_flash_overflows() {
    // A board with almost no flash: even the slim 25 KB runtime cannot fit.
    let (m, data) = trained(501);
    let tiny_board = Board {
        name: "hypothetical 16KB part".into(),
        clock_hz: 80_000_000,
        flash_bytes: 16 * 1024,
        ram_bytes: 128 * 1024,
        active_power_mw: 15.0,
    };
    let fw = Framework::analyze(
        &m,
        &data,
        AtamanConfig {
            board: tiny_board,
            ..AtamanConfig::quick()
        },
    );
    let err = fw.deploy(0.10).unwrap_err();
    match err {
        ataman::DeploymentError::Flash(o) => {
            assert!(o.required > o.available);
            assert_eq!(o.available, 16 * 1024);
        }
        other => panic!("expected flash overflow, got {other}"),
    }
}

#[test]
fn same_design_fits_bigger_board() {
    let (m, data) = trained(502);
    let fw = Framework::analyze(&m, &data, AtamanConfig::quick());
    // mini_cifar unpacked fits the paper board comfortably
    let dep = fw.deploy(0.10).expect("fits STM32U575");
    assert!(dep.flash.check(&Board::stm32u575()).is_ok());
    assert!(dep.ram.fits(&Board::stm32u575()));
}

#[test]
fn error_messages_are_actionable() {
    let (m, data) = trained(503);
    let fw = Framework::analyze(&m, &data, AtamanConfig::quick());
    let msg = fw.deploy(-0.5).unwrap_err().to_string();
    assert!(msg.contains("accuracy loss"), "unhelpful message: {msg}");
}

#[test]
fn utilization_reported_against_the_right_board() {
    let (m, data) = trained(504);
    let fw = Framework::analyze(&m, &data, AtamanConfig::quick());
    let dep = fw.deploy(0.05).expect("deploys");
    let util_paper = dep.flash.utilization(&Board::stm32u575());
    let util_small = dep.flash.utilization(&Board::small_m33());
    assert!(util_small > util_paper);
    assert!(util_paper > 0.0 && util_paper < 1.0);
}
