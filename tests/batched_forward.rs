//! Property tests for the batch-major compiled execution path: for any
//! random model, any τ grid (via real significance scores), any batch size
//! and any ragged final batch, the batched forward must be bit-exact with
//! the per-image compiled forward — and hence, transitively (see
//! `compiled_masks.rs`), with the boolean-mask reference.

use proptest::prelude::*;
use quantize::{
    calibrate_ranges, quantize_model, BatchScratch, CompiledMasks, ForwardScratch, QuantModel,
    SkipMaskSet,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use signif::{capture_mean_inputs, SignificanceMap, TauAssignment};
use tinynn::Sequential;
use tinytensor::Shape4;

/// Build a small random CNN: 1-2 conv(+relu) layers, pool, dense.
fn random_model(seed: u64, convs: usize, width: usize, kernel: usize) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new("prop", Shape4::nhwc(1, 8, 8, 2));
    for _ in 0..convs {
        m = m.conv_relu(width, kernel, &mut rng);
    }
    m = m.maxpool();
    m.dense(4, true, &mut rng)
}

/// Quantize against a tiny synthetic calibration set; returns eval images.
fn quantized(model: &Sequential, seed: u64, n: usize) -> (QuantModel, cifar10sim::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
    let len = 8 * 8 * 2;
    let mut flat = Vec::with_capacity(n * len);
    for _ in 0..n * len {
        flat.push(rng.gen_range(0.0f32..1.0));
    }
    let ds = cifar10sim::Dataset {
        images: tinytensor::Tensor::from_vec(Shape4::nhwc(n, 8, 8, 2), flat).unwrap(),
        labels: vec![0; n],
    };
    let ranges = calibrate_ranges(model, &ds);
    let q = quantize_model(model, &ranges);
    (q, ds)
}

/// Stack the first `n` eval images as quantized inputs.
fn stacked(q: &QuantModel, ds: &cifar10sim::Dataset, n: usize) -> Vec<i8> {
    let mut flat = Vec::new();
    for i in 0..n {
        flat.extend(q.quantize_input(ds.image(i)));
    }
    flat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random boolean masks: the batched forward over every batch split of
    /// the image set (full and ragged batches, with and without the
    /// batched conv0 pair-column cache) equals the per-image compiled
    /// forward bit-for-bit.
    #[test]
    fn batched_equals_per_image_for_any_mask_and_batch_size(
        seed in 0u64..5000,
        convs in 1usize..3,
        width in 2usize..6,
        kernel in prop::sample::select(vec![1usize, 3]),
        skip_mod in 2u64..9,
        batch in 1usize..8,
    ) {
        let model = random_model(seed, convs, width, kernel);
        let n_images = 7; // prime: every batch size 2..=7 leaves a ragged tail
        let (q, ds) = quantized(&model, seed, n_images);
        let n = q.conv_indices().len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
        let mut masks = SkipMaskSet::none(n);
        for k in 0..n {
            let c = q.conv(k);
            let len = c.geom.out_c * c.patch_len();
            masks.per_conv[k] =
                Some((0..len).map(|_| rng.gen_range(0u64..skip_mod) == 0).collect());
        }
        let compiled = CompiledMasks::compile(&q, &masks);
        let in_len = q.input_shape.item_len();
        let mut per_image = ForwardScratch::for_model(&q);
        let mut bs = BatchScratch::for_model(&q, batch);

        // Per-image references.
        let flat_all = stacked(&q, &ds, n_images);
        let refs: Vec<Vec<i8>> = (0..n_images)
            .map(|i| q.forward_compiled_scratch(
                &flat_all[i * in_len..(i + 1) * in_len], None, Some(&compiled), &mut per_image,
            ))
            .collect();

        // Batched over the whole set in `batch`-sized chunks (ragged tail).
        let mut start = 0usize;
        while start < n_images {
            let b = batch.min(n_images - start);
            let flat = &flat_all[start * in_len..(start + b) * in_len];
            let got = q.forward_compiled_batch_scratch(flat, b, None, Some(&compiled), &mut bs);
            let pcols = q.conv0_pair_cols_batch(flat, b).expect("starts with conv");
            let got_cached =
                q.forward_compiled_batch_scratch(flat, b, Some(&pcols), Some(&compiled), &mut bs);
            let out_len = refs[0].len();
            for i in 0..b {
                prop_assert_eq!(
                    &got[i * out_len..(i + 1) * out_len],
                    &refs[start + i][..],
                    "batch start {} size {} image {} (uncached)", start, b, i
                );
                prop_assert_eq!(
                    &got_cached[i * out_len..(i + 1) * out_len],
                    &refs[start + i][..],
                    "batch start {} size {} image {} (conv0-cached)", start, b, i
                );
            }
            start += b;
        }
    }

    /// Real τ-driven masks: batched predictions equal per-image
    /// predictions, and both equal the boolean-mask reference argmax.
    #[test]
    fn batched_predictions_equal_reference_for_any_tau(
        seed in 0u64..5000,
        convs in 1usize..3,
        width in 2usize..5,
        kernel in prop::sample::select(vec![1usize, 3]),
        tau in 0.0f64..0.25,
        batch in 1usize..6,
    ) {
        let model = random_model(seed, convs, width, kernel);
        let n_images = 5;
        let (q, ds) = quantized(&model, seed, n_images);
        let means = capture_mean_inputs(&q, &ds);
        let sig = SignificanceMap::compute(&q, &means);
        let taus = TauAssignment::global(tau);
        let bool_masks = sig.masks_for_tau(&q, &taus);
        let compiled = sig.compiled_masks_for_tau(&q, &taus);
        let in_len = q.input_shape.item_len();
        let b = batch.min(n_images);
        let flat = stacked(&q, &ds, b);
        let mut bs = BatchScratch::for_model(&q, b);
        let preds = q.predict_compiled_batch_scratch(&flat, b, None, Some(&compiled), &mut bs);
        for (i, &pred) in preds.iter().enumerate() {
            let want = q.forward_quantized(
                &flat[i * in_len..(i + 1) * in_len],
                Some(&bool_masks),
            );
            prop_assert_eq!(pred, quantize::argmax_i8(&want), "tau {} image {}", tau, i);
        }
    }
}
