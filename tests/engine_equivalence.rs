//! Cross-engine equivalence over the **open layer set**: for any random
//! model shape (including the global-average-pool layer, models ending on
//! a pool/GAP, and multi-conv stacks) and any random τ-style skip masks,
//! every engine that consumes the shared `ExecPlan` must produce
//! bit-identical logits:
//!
//! * masked: boolean reference ≡ compiled per-image ≡ batch-major (all
//!   batch splits incl. ragged) ≡ unpacked straight-line;
//! * exact (no masks): the above plus the CMSIS-style engine and the
//!   X-CUBE-AI comparator.
//!
//! This is the acceptance property of the ExecPlan refactor: one walker,
//! five backends, one ground truth.

use ataman_repro::prelude::*;
use proptest::prelude::*;
use quantize::{BatchScratch, CompiledMasks, ForwardScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinytensor::Shape4;

/// Build a small random CNN over 8×8×2 inputs. `head` picks the tail
/// shape, exercising every segment kind and epilogue layout:
/// 0 = pool→dense, 1 = GAP→dense, 2 = pool→GAP→dense, 3 = dense (flatten),
/// 4 = GAP (model ends on the pooled channel vector), 5 = pool (model ends
/// planar — the logits epilogue must unbatch).
fn random_model(seed: u64, convs: usize, width: usize, kernel: usize, head: u8) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new("eq", Shape4::nhwc(1, 8, 8, 2));
    for _ in 0..convs {
        m = m.conv_relu(width, kernel, &mut rng);
    }
    match head % 6 {
        0 => m.maxpool().dense(4, true, &mut rng),
        1 => m.global_avg_pool().dense(4, true, &mut rng),
        2 => m.maxpool().global_avg_pool().dense(4, true, &mut rng),
        3 => m.dense(4, true, &mut rng),
        4 => m.global_avg_pool(),
        _ => m.maxpool(),
    }
}

/// Build a small random **residual** CNN over 8×8×2 inputs. `stem` 0 puts
/// the first skip edge right at the input (NHWC stash joined against a
/// planar conv branch — the mixed-layout join); `stem` 1 opens with a
/// conv+relu so every join is planar/planar. `blocks` residual blocks of
/// `block_convs` convs each follow, then a GAP/dense head.
fn random_residual_model(
    seed: u64,
    width: usize,
    stem: u8,
    blocks: usize,
    block_convs: usize,
    head: u8,
) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new("req", Shape4::nhwc(1, 8, 8, 2));
    let c = if stem % 2 == 1 {
        m = m.conv_relu(width, 3, &mut rng);
        width
    } else {
        2
    };
    for _ in 0..blocks {
        m = m.residual(|mut b| {
            for _ in 0..block_convs.saturating_sub(1) {
                b = b.conv_relu(c, 3, &mut rng);
            }
            b.conv(c, 3, &mut rng)
        });
    }
    match head % 3 {
        0 => m.dense(4, true, &mut rng),
        1 => m.global_avg_pool().dense(4, true, &mut rng),
        _ => m.maxpool().global_avg_pool().dense(4, true, &mut rng),
    }
}

fn quantized(model: &Sequential, seed: u64, n: usize) -> (QuantModel, cifar10sim::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    let len = 8 * 8 * 2;
    let flat: Vec<f32> = (0..n * len).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    let labels: Vec<u8> = (0..n).map(|_| rng.gen_range(0u8..4)).collect();
    let ds = cifar10sim::Dataset {
        images: tinytensor::Tensor::from_vec(Shape4::nhwc(n, 8, 8, 2), flat).unwrap(),
        labels,
    };
    let ranges = calibrate_ranges(model, &ds);
    let q = quantize_model(model, &ranges);
    (q, ds)
}

fn random_masks(q: &QuantModel, seed: u64, skip_mod: u64) -> SkipMaskSet {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
    let n = q.conv_indices().len();
    let mut masks = SkipMaskSet::none(n);
    for k in 0..n {
        let c = q.conv(k);
        let len = c.geom.out_c * c.patch_len();
        masks.per_conv[k] = Some(
            (0..len)
                .map(|_| rng.gen_range(0u64..skip_mod) == 0)
                .collect(),
        );
    }
    masks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// All five plan-consuming engines (and the X-CUBE comparator) agree
    /// bit-for-bit on exact models; the four mask-capable paths agree under
    /// random skip masks — for every head shape and batch split.
    #[test]
    fn five_engines_bit_exact(
        seed in 0u64..5000,
        convs in 1usize..4,
        width in 2usize..5,
        kernel in prop::sample::select(vec![1usize, 3]),
        head in 0u8..6,
        skip_mod in 2u64..9,
        batch in 1usize..6,
    ) {
        let model = random_model(seed, convs, width, kernel, head);
        let n_images = 5; // prime: batch sizes 2..=4 leave a ragged tail
        let (q, ds) = quantized(&model, seed, n_images);
        let in_len = q.input_shape.item_len();
        let qinputs: Vec<Vec<i8>> =
            (0..n_images).map(|i| q.quantize_input(ds.image(i))).collect();

        // --- exact: reference ≡ cmsis ≡ xcube ≡ unpacked ≡ compiled ------
        let cmsis = CmsisEngine::new(&q);
        let xcube = XCubeEngine::new(&q);
        let unpacked = UnpackedEngine::new(&q, None, UnpackOptions::default());
        for (i, qin) in qinputs.iter().enumerate() {
            let want = q.forward_quantized(qin, None);
            prop_assert_eq!(&cmsis.infer_quantized(qin).0, &want, "cmsis img {}", i);
            prop_assert_eq!(&xcube.infer(ds.image(i)).0, &want, "xcube img {}", i);
            prop_assert_eq!(&unpacked.infer_quantized(qin).0, &want, "unpacked img {}", i);
            prop_assert_eq!(&q.forward_compiled(qin, None), &want, "compiled img {}", i);
        }

        // --- masked: reference ≡ compiled ≡ batch ≡ unpacked -------------
        let masks = random_masks(&q, seed, skip_mod);
        let compiled = CompiledMasks::compile(&q, &masks);
        let unpacked_m = UnpackedEngine::new(&q, Some(&masks), UnpackOptions::default());
        let mut fs = ForwardScratch::for_model(&q);
        let mut refs = Vec::new();
        for (i, qin) in qinputs.iter().enumerate() {
            let want = q.forward_quantized(qin, Some(&masks));
            prop_assert_eq!(&unpacked_m.infer_quantized(qin).0, &want, "unpacked masked {}", i);
            let got = q.forward_compiled_scratch(qin, None, Some(&compiled), &mut fs);
            prop_assert_eq!(&got, &want, "compiled masked {}", i);
            refs.push(want);
        }
        // Batched, in ragged splits of `batch`.
        let out_len = refs[0].len();
        let mut bs = BatchScratch::for_model(&q, batch.min(n_images));
        let mut start = 0usize;
        while start < n_images {
            let b = batch.min(n_images - start);
            let mut flat = Vec::with_capacity(b * in_len);
            for qin in &qinputs[start..start + b] {
                flat.extend_from_slice(qin);
            }
            let got = q.forward_compiled_batch_scratch(&flat, b, None, Some(&compiled), &mut bs);
            for i in 0..b {
                prop_assert_eq!(
                    &got[i * out_len..(i + 1) * out_len],
                    &refs[start + i][..],
                    "batched masked, start {} lane {}", start, i
                );
            }
            start += b;
        }
    }

    /// Residual (DAG-shaped) models: all mask-capable engines agree
    /// bit-for-bit under random skip masks, the exact engines agree with
    /// the reference, batching is split-invariant, and the resumable
    /// checkpoint chain crosses every residual join — skip edges at
    /// varying depths, including a stash of the raw input joined against a
    /// planar branch.
    #[test]
    fn residual_models_five_engines_bit_exact(
        seed in 0u64..5000,
        width in 2usize..5,
        stem in 0u8..2,
        blocks in 1usize..3,
        block_convs in 1usize..3,
        head in 0u8..3,
        skip_mod in 2u64..9,
        batch in 1usize..6,
    ) {
        let model = random_residual_model(seed, width, stem, blocks, block_convs, head);
        let n_images = 5; // prime: batch sizes 2..=4 leave a ragged tail
        let (q, ds) = quantized(&model, seed, n_images);
        let in_len = q.input_shape.item_len();
        let qinputs: Vec<Vec<i8>> =
            (0..n_images).map(|i| q.quantize_input(ds.image(i))).collect();

        // --- exact: reference ≡ cmsis ≡ xcube ≡ unpacked ≡ compiled ------
        let cmsis = CmsisEngine::new(&q);
        let xcube = XCubeEngine::new(&q);
        let unpacked = UnpackedEngine::new(&q, None, UnpackOptions::default());
        for (i, qin) in qinputs.iter().enumerate() {
            let want = q.forward_quantized(qin, None);
            prop_assert_eq!(&cmsis.infer_quantized(qin).0, &want, "cmsis img {}", i);
            prop_assert_eq!(&xcube.infer(ds.image(i)).0, &want, "xcube img {}", i);
            prop_assert_eq!(&unpacked.infer_quantized(qin).0, &want, "unpacked img {}", i);
            prop_assert_eq!(&q.forward_compiled(qin, None), &want, "compiled img {}", i);
        }

        // --- masked: reference ≡ compiled ≡ batch ≡ unpacked -------------
        let masks = random_masks(&q, seed, skip_mod);
        let compiled = CompiledMasks::compile(&q, &masks);
        let unpacked_m = UnpackedEngine::new(&q, Some(&masks), UnpackOptions::default());
        let mut fs = ForwardScratch::for_model(&q);
        let mut refs = Vec::new();
        for (i, qin) in qinputs.iter().enumerate() {
            let want = q.forward_quantized(qin, Some(&masks));
            prop_assert_eq!(&unpacked_m.infer_quantized(qin).0, &want, "unpacked masked {}", i);
            let got = q.forward_compiled_scratch(qin, None, Some(&compiled), &mut fs);
            prop_assert_eq!(&got, &want, "compiled masked {}", i);
            refs.push(want);
        }
        // Batched, in ragged splits of `batch`.
        let out_len = refs[0].len();
        let mut bs = BatchScratch::for_model(&q, batch.min(n_images));
        let mut start = 0usize;
        while start < n_images {
            let b = batch.min(n_images - start);
            let mut flat = Vec::with_capacity(b * in_len);
            for qin in &qinputs[start..start + b] {
                flat.extend_from_slice(qin);
            }
            let got = q.forward_compiled_batch_scratch(&flat, b, None, Some(&compiled), &mut bs);
            for i in 0..b {
                prop_assert_eq!(
                    &got[i * out_len..(i + 1) * out_len],
                    &refs[start + i][..],
                    "batched masked, start {} lane {}", start, i
                );
            }
            start += b;
        }

        // --- checkpoint-resume across the residual joins -----------------
        let cb = batch.min(n_images);
        let mut flat = Vec::with_capacity(cb * in_len);
        for qin in &qinputs[..cb] {
            flat.extend_from_slice(qin);
        }
        let want = q.predict_compiled_batch_scratch(&flat, cb, None, Some(&compiled), &mut bs);
        let mut cur = q.batch_start(&flat, cb, &mut bs);
        let mut next = quantize::BatchCheckpoint::empty();
        let mut cols = Vec::new();
        while let Some(k) = cur.next_conv_ordinal() {
            q.batch_fill_conv_cols(&cur, &mut bs, &mut cols);
            q.batch_advance_into(&cur, compiled.per_conv[k].as_ref(), Some(&cols), &mut bs, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        prop_assert!(cur.is_complete());
        let mut preds = Vec::new();
        q.batch_checkpoint_predictions_into(&cur, &mut preds);
        prop_assert_eq!(preds, want);
    }

    /// Prefix sharing through a residual join: a checkpoint taken before a
    /// conv *inside* a residual block (i.e. with a live stash) is advanced
    /// under two different τ streams; each leaf must equal its design's
    /// monolithic batched run.
    #[test]
    fn checkpoint_prefix_shares_through_residual_join(
        seed in 0u64..5000,
        width in 2usize..4,
        stem in 0u8..2,
        skip_mod in 2u64..7,
        batch in 1usize..5,
    ) {
        // One residual block of two convs: conv ordinals inside the block
        // see a live stash at their checkpoint.
        let model = random_residual_model(seed, width, stem, 1, 2, 1);
        let (q, ds) = quantized(&model, seed, batch);
        let masks_a = random_masks(&q, seed, skip_mod);
        let mut masks_b = masks_a.clone();
        let last = q.conv_indices().len() - 1;
        masks_b.per_conv[last] = random_masks(&q, seed ^ 0xA5A5, 2).per_conv[last].clone();
        let ca = CompiledMasks::compile(&q, &masks_a);
        let cb = CompiledMasks::compile(&q, &masks_b);
        let mut flat = Vec::new();
        for i in 0..batch {
            flat.extend(q.quantize_input(ds.image(i)));
        }
        let mut bs = BatchScratch::for_model(&q, batch);

        // Shared prefix: everything up to (but not including) the last conv.
        let mut shared = q.batch_start(&flat, batch, &mut bs);
        let mut tmp = quantize::BatchCheckpoint::empty();
        for k in 0..last {
            q.batch_advance_into(&shared, ca.per_conv[k].as_ref(), None, &mut bs, &mut tmp);
            std::mem::swap(&mut shared, &mut tmp);
        }
        let mut leaf = quantize::BatchCheckpoint::empty();
        let mut preds = Vec::new();
        for (cm, label) in [(&ca, "a"), (&cb, "b")] {
            q.batch_advance_into(&shared, cm.per_conv[last].as_ref(), None, &mut bs, &mut leaf);
            prop_assert!(leaf.is_complete());
            q.batch_checkpoint_predictions_into(&leaf, &mut preds);
            let want = q.predict_compiled_batch_scratch(&flat, batch, None, Some(cm), &mut bs);
            prop_assert_eq!(&preds, &want, "design {}", label);
        }
    }

    /// The checkpoint-resumed batch path handles GAP-bearing models: chain
    /// of per-conv advances ≡ monolithic batched predictions.
    #[test]
    fn checkpoint_resume_handles_gap_models(
        seed in 0u64..5000,
        convs in 1usize..3,
        width in 2usize..5,
        head in prop::sample::select(vec![1u8, 2, 4]),
        skip_mod in 2u64..7,
        batch in 1usize..5,
    ) {
        let model = random_model(seed, convs, width, 3, head);
        let (q, ds) = quantized(&model, seed, batch);
        let masks = random_masks(&q, seed, skip_mod);
        let compiled = CompiledMasks::compile(&q, &masks);
        let mut flat = Vec::new();
        for i in 0..batch {
            flat.extend(q.quantize_input(ds.image(i)));
        }
        let mut bs = BatchScratch::for_model(&q, batch);
        let want = q.predict_compiled_batch_scratch(&flat, batch, None, Some(&compiled), &mut bs);

        let mut cur = q.batch_start(&flat, batch, &mut bs);
        let mut next = quantize::BatchCheckpoint::empty();
        let mut cols = Vec::new();
        while let Some(k) = cur.next_conv_ordinal() {
            q.batch_fill_conv_cols(&cur, &mut bs, &mut cols);
            q.batch_advance_into(&cur, compiled.per_conv[k].as_ref(), Some(&cols), &mut bs, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        prop_assert!(cur.is_complete());
        let mut preds = Vec::new();
        q.batch_checkpoint_predictions_into(&cur, &mut preds);
        prop_assert_eq!(preds, want);
    }
}

/// The mini-ResNet zoo model (two residual stages + GAP head) runs
/// end-to-end through every engine, the analytic estimators and the
/// prefix-sharing DSE — the acceptance property of the DAG-shaped ExecPlan.
#[test]
fn zoo_resnet_model_reaches_all_backends() {
    let data = generate(DatasetConfig::tiny(78));
    let m = zoo::mini_resnet(78);
    let ranges = calibrate_ranges(&m, &data.train.take(8));
    let q = quantize_model(&m, &ranges);

    let cmsis = CmsisEngine::new(&q);
    let unpacked = UnpackedEngine::new(&q, None, UnpackOptions::default());
    let xcube = XCubeEngine::new(&q);
    for i in 0..6 {
        let img = data.test.image(i);
        let want = q.forward(img);
        assert_eq!(cmsis.infer(img).0, want, "cmsis img {i}");
        assert_eq!(unpacked.infer(img).0, want, "unpacked img {i}");
        assert_eq!(xcube.infer(img).0, want, "xcube img {i}");
        assert_eq!(
            q.forward_compiled(&q.quantize_input(img), None),
            want,
            "compiled img {i}"
        );
    }
    // Cycle accounting covers the Add segments in engine and estimator
    // alike (and the residual join is actually charged).
    let (_, measured) = unpacked.infer(data.test.image(0));
    let estimated = dse::estimate_stats(&q, None, UnpackOptions::default());
    assert_eq!(
        estimated, measured,
        "analytic estimator ≡ engine on residual model"
    );
    assert!(
        measured.count(mcusim::Event::AddRequant) > 0,
        "residual join charged"
    );

    // The DSE explores the residual model bit-exactly through the trie
    // path (prefixes share through the residual joins).
    let means = capture_mean_inputs(&q, &data.train.take(8));
    let sig = SignificanceMap::compute(&q, &means);
    let n = q.conv_indices().len();
    let mut mixed = vec![Some(0.02); n];
    mixed[0] = None;
    let configs: Vec<TauAssignment> = vec![
        TauAssignment::global(0.0),
        TauAssignment::global(0.01),
        TauAssignment::global(0.05),
        TauAssignment::per_layer(mixed),
    ];
    let opts = dse::ExploreOptions {
        eval_images: 16,
        ..Default::default()
    };
    let fast = dse::explore(&q, &sig, &data.test, &configs, &opts);
    let slow = dse::explore_reference(&q, &sig, &data.test, &configs, &opts);
    for (a, b) in fast.iter().zip(&slow) {
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.est_cycles, b.est_cycles);
        assert_eq!(a.est_flash, b.est_flash);
        assert_eq!(a.retained_macs, b.retained_macs);
    }
}

/// The GAP-headed zoo model runs end-to-end through every engine, the DSE
/// and the analytic estimators (the "one segment executor per backend"
/// acceptance check for the opened layer set).
#[test]
fn zoo_gap_model_reaches_all_backends() {
    let data = generate(DatasetConfig::tiny(77));
    let m = zoo::mini_cifar_gap(77);
    let ranges = calibrate_ranges(&m, &data.train.take(8));
    let q = quantize_model(&m, &ranges);

    let cmsis = CmsisEngine::new(&q);
    let unpacked = UnpackedEngine::new(&q, None, UnpackOptions::default());
    let xcube = XCubeEngine::new(&q);
    for i in 0..6 {
        let img = data.test.image(i);
        let want = q.forward(img);
        assert_eq!(cmsis.infer(img).0, want, "cmsis img {i}");
        assert_eq!(unpacked.infer(img).0, want, "unpacked img {i}");
        assert_eq!(xcube.infer(img).0, want, "xcube img {i}");
        assert_eq!(
            q.forward_compiled(&q.quantize_input(img), None),
            want,
            "compiled img {i}"
        );
    }
    // Cycle accounting covers the GAP segment in engine and estimator alike.
    let (_, measured) = unpacked.infer(data.test.image(0));
    let estimated = dse::estimate_stats(&q, None, UnpackOptions::default());
    assert_eq!(
        estimated, measured,
        "analytic estimator ≡ engine on GAP model"
    );
    assert!(measured.count(mcusim::Event::AvgAccum) > 0, "GAP charged");

    // The DSE explores the GAP model bit-exactly through the trie path.
    let means = capture_mean_inputs(&q, &data.train.take(8));
    let sig = SignificanceMap::compute(&q, &means);
    let configs: Vec<TauAssignment> = [0.0, 0.01, 0.05]
        .iter()
        .map(|&t| TauAssignment::global(t))
        .collect();
    let opts = dse::ExploreOptions {
        eval_images: 16,
        ..Default::default()
    };
    let fast = dse::explore(&q, &sig, &data.test, &configs, &opts);
    let slow = dse::explore_reference(&q, &sig, &data.test, &configs, &opts);
    for (a, b) in fast.iter().zip(&slow) {
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.est_cycles, b.est_cycles);
        assert_eq!(a.est_flash, b.est_flash);
    }
}
