//! Property tests for the compiled skip-mask execution path: for any random
//! model, any τ grid (via real significance scores) and any random mask,
//! the compiled kernels must be bit-exact with the `Vec<bool>` reference.

use proptest::prelude::*;
use quantize::{
    calibrate_ranges, quantize_model, CompiledMasks, ForwardScratch, QuantModel, SkipMaskSet,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use signif::{capture_mean_inputs, SignificanceMap, TauAssignment};
use tinynn::Sequential;
use tinytensor::Shape4;

/// Build a small random CNN: 1-2 conv(+relu) layers, pool, dense.
fn random_model(seed: u64, convs: usize, width: usize, kernel: usize) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Sequential::new("prop", Shape4::nhwc(1, 8, 8, 2));
    for _ in 0..convs {
        m = m.conv_relu(width, kernel, &mut rng);
    }
    m = m.maxpool();
    m.dense(4, true, &mut rng)
}

/// Quantize against a tiny synthetic calibration set; returns eval images.
fn quantized(model: &Sequential, seed: u64) -> (QuantModel, cifar10sim::Dataset) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
    let n = 6;
    let len = 8 * 8 * 2;
    let mut flat = Vec::with_capacity(n * len);
    for _ in 0..n * len {
        flat.push(rng.gen_range(0.0f32..1.0));
    }
    let ds = cifar10sim::Dataset {
        images: tinytensor::Tensor::from_vec(Shape4::nhwc(n, 8, 8, 2), flat).unwrap(),
        labels: vec![0; n],
    };
    let ranges = calibrate_ranges(model, &ds);
    let q = quantize_model(model, &ranges);
    (q, ds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random boolean masks: compiled kernels equal the reference
    /// bit-for-bit on every image, with and without the conv0 column cache.
    #[test]
    fn compiled_equals_reference_for_any_mask(
        seed in 0u64..5000,
        convs in 1usize..3,
        width in 2usize..6,
        kernel in prop::sample::select(vec![1usize, 3]),
        skip_mod in 2u64..9,
    ) {
        let model = random_model(seed, convs, width, kernel);
        let (q, ds) = quantized(&model, seed);
        let n = q.conv_indices().len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
        let mut masks = SkipMaskSet::none(n);
        for k in 0..n {
            let c = q.conv(k);
            let len = c.geom.out_c * c.patch_len();
            masks.per_conv[k] =
                Some((0..len).map(|_| rng.gen_range(0u64..skip_mod) == 0).collect());
        }
        let compiled = CompiledMasks::compile(&q, &masks);
        let mut scratch = ForwardScratch::for_model(&q);
        for i in 0..ds.len() {
            let qin = q.quantize_input(ds.image(i));
            let want = q.forward_quantized(&qin, Some(&masks));
            let got = q.forward_compiled(&qin, Some(&compiled));
            prop_assert_eq!(&got, &want, "image {} plain", i);
            let cols = q.conv0_pair_cols(&qin).expect("first layer is conv");
            let cached = q.forward_compiled_scratch(
                &qin, Some(&cols), Some(&compiled), &mut scratch,
            );
            prop_assert_eq!(&cached, &want, "image {} conv0-cached", i);
        }
    }

    /// Real τ-driven masks from significance scores: the directly-emitted
    /// compiled form, the compiled boolean form and the reference all agree.
    #[test]
    fn compiled_equals_reference_for_any_tau_grid(
        seed in 0u64..5000,
        convs in 1usize..3,
        width in 2usize..5,
        kernel in prop::sample::select(vec![1usize, 3]),
        tau in 0.0f64..0.25,
    ) {
        let model = random_model(seed, convs, width, kernel);
        let (q, ds) = quantized(&model, seed);
        let means = capture_mean_inputs(&q, &ds);
        let sig = SignificanceMap::compute(&q, &means);
        let taus = TauAssignment::global(tau);
        let bool_masks = sig.masks_for_tau(&q, &taus);
        let direct = sig.compiled_masks_for_tau(&q, &taus);
        let via_bool = CompiledMasks::compile(&q, &bool_masks);
        prop_assert_eq!(&direct, &via_bool);
        for i in 0..ds.len() {
            let qin = q.quantize_input(ds.image(i));
            let want = q.forward_quantized(&qin, Some(&bool_masks));
            let got = q.forward_compiled(&qin, Some(&direct));
            prop_assert_eq!(&got, &want, "tau {} image {}", tau, i);
        }
    }
}
