//! Export the generated approximate C kernels and exercise the flash
//! budgeting — including the failure path on a smaller MCU.
//!
//! The paper's framework "generates the approximate code, which is then
//! compiled and deployed to the MCU". This example writes that artifact to
//! `target/ataman_generated/` and shows the budget check rejecting a
//! deployment that cannot fit a 512 KB part.
//!
//! ```sh
//! cargo run --release --example codegen_export
//! ```

use ataman_repro::prelude::*;
use std::fs;
use std::path::Path;

fn main() {
    let mut cfg = DatasetConfig::paper_default();
    cfg.n_train = 1_200;
    cfg.n_test = 300;
    let data = generate(cfg);
    let mut model = zoo::mini_cifar(11);
    println!("training {} ...", model.name);
    Trainer::new(SgdConfig {
        epochs: 5,
        lr: 0.08,
        ..Default::default()
    })
    .train(&mut model, &data.train);

    // Deploy on the paper's board.
    let fw = Framework::analyze(&model, &data, AtamanConfig::quick());
    let dep = fw.deploy(0.05).expect("fits the STM32U575");
    println!(
        "deployment: {:.2} ms, flash {:.0} KB ({:.1}% of board), RAM {:.0} KB",
        dep.latency_ms,
        dep.flash.total() as f64 / 1024.0,
        dep.flash.utilization(&Board::stm32u575()) * 100.0,
        dep.ram.total_kb()
    );

    // Write the generated C.
    let out_dir = Path::new("target/ataman_generated");
    fs::create_dir_all(out_dir).expect("create output dir");
    let c_path = out_dir.join("approx_kernels.c");
    fs::write(&c_path, &dep.c_code).expect("write C file");
    println!(
        "wrote {} ({} lines, {} SMLAD ops hardwired)",
        c_path.display(),
        dep.c_code.lines().count(),
        dep.c_code.matches("__SMLAD").count()
    );

    // Also export the DSE report for plotting.
    let json_path = out_dir.join("dse_report.json");
    fs::write(&json_path, fw.dse_report().to_json()).expect("write report");
    println!("wrote {}", json_path.display());

    // Failure injection: the same design on a 512 KB part.
    let small = Board::small_m33();
    match dep.flash.check(&small) {
        Ok(()) => println!("note: design would also fit {}", small.name),
        Err(e) => println!("budget check on '{}' correctly refused: {e}", small.name),
    }

    // A heavily skipped design may still fit: try the 20%-loss point.
    if let Ok(aggressive) = fw.deploy(0.20) {
        let fits = aggressive.flash.check(&small).is_ok();
        println!(
            "20%-loss design: flash {:.0} KB -> {} on the small part",
            aggressive.flash.total() as f64 / 1024.0,
            if fits { "fits" } else { "still too large" }
        );
    }
}
