//! Smart-manufacturing visual inspection panel.
//!
//! The paper's intro motivates MCU inference for "smart manufacturing":
//! a camera MCU classifying parts on a conveyor must meet a *hard frame
//! budget*. This example asks the framework for the fastest design meeting
//! a throughput requirement, walking down the accuracy/latency Pareto front
//! until the frame time fits — the inverse query of `quickstart` (there:
//! accuracy budget → latency; here: latency budget → accuracy).
//!
//! ```sh
//! cargo run --release --example inspection_line
//! ```

use ataman_repro::prelude::*;

/// Frames per second the inspection line requires.
const REQUIRED_FPS: f64 = 18.0;

fn main() {
    println!("== visual inspection: meet {REQUIRED_FPS} fps on an STM32U575 ==");
    let mut cfg = DatasetConfig::paper_default();
    cfg.n_train = 2_000;
    cfg.n_test = 600;
    let data = generate(cfg);

    let mut model = zoo::lenet(7);
    println!(
        "training {} ({:.2}M MACs) ...",
        model.name,
        model.macs() as f64 / 1e6
    );
    let mut trainer = Trainer::new(SgdConfig {
        epochs: 5,
        ..Default::default()
    });
    trainer.train(&mut model, &data.train);

    let fw = Framework::analyze(
        &model,
        &data,
        AtamanConfig {
            eval_images: 192,
            tau_step: 0.02,
            max_configs: 120,
            ..Default::default()
        },
    );
    let board = Board::stm32u575();
    let budget_ms = 1_000.0 / REQUIRED_FPS;

    let cmsis = ataman::baseline_cmsis(fw.quant_model(), &data.test, &board);
    println!(
        "exact CMSIS-NN: {:.1} ms/frame ({:.1} fps) — {}",
        cmsis.latency_ms,
        1_000.0 / cmsis.latency_ms,
        if cmsis.latency_ms <= budget_ms {
            "meets budget"
        } else {
            "MISSES budget"
        },
    );

    // Walk the Pareto front from most accurate to fastest until the frame
    // budget holds.
    let mut chosen = None;
    for loss in [0.0f32, 0.02, 0.05, 0.08, 0.10, 0.15, 0.20] {
        if let Ok(dep) = fw.deploy_with_accuracy(loss, &data.test) {
            println!(
                "  loss ≤{:>4.1}% → {:6.2} ms/frame ({:4.1} fps), accuracy {:.1}%",
                loss * 100.0,
                dep.latency_ms,
                1_000.0 / dep.latency_ms,
                dep.test_accuracy.unwrap() * 100.0
            );
            if dep.latency_ms <= budget_ms {
                chosen = Some((loss, dep));
                break;
            }
        }
    }

    match chosen {
        Some((loss, dep)) => {
            println!(
                "\n→ deploying the {:.0}%-loss design: {:.2} ms/frame, {:.2} mJ, {:.0} KB flash",
                loss * 100.0,
                dep.latency_ms,
                dep.energy_mj,
                dep.flash.total() as f64 / 1024.0
            );
            println!(
                "  accuracy {:.1}% (exact engine would have been {:.1}% at {:.1} fps)",
                dep.test_accuracy.unwrap() * 100.0,
                cmsis.accuracy * 100.0,
                1_000.0 / cmsis.latency_ms
            );
        }
        None => println!("\n→ no design meets {budget_ms:.1} ms — pick a smaller model"),
    }
}
