//! Quickstart: the full ATAMAN pipeline on a small CNN in under a minute.
//!
//! Trains a compact CIFAR-shaped CNN on the synthetic dataset, runs the
//! cooperative approximation framework (unpack → significance → DSE →
//! Pareto), and deploys the latency-optimal designs at three accuracy-loss
//! budgets — a miniature of the paper's Table II.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ataman_repro::prelude::*;

fn main() {
    // 1. Data + training (the substrate the paper takes as given).
    println!("== ATAMAN-rs quickstart ==");
    let mut cfg = DatasetConfig::paper_default();
    cfg.n_train = 2_000;
    cfg.n_test = 600;
    let data = generate(cfg);
    let mut model = zoo::mini_cifar(42);
    println!(
        "training {} ({} params, {:.2}M MACs) on {} synthetic images ...",
        model.name,
        model.param_count(),
        model.macs() as f64 / 1e6,
        data.train.len()
    );
    let mut trainer = Trainer::new(SgdConfig {
        epochs: 6,
        lr: 0.08,
        ..Default::default()
    });
    let report = trainer.train(&mut model, &data.train);
    println!(
        "  loss {:.3} -> {:.3}, f32 test accuracy {:.1}%",
        report.epoch_loss.first().unwrap(),
        report.epoch_loss.last().unwrap(),
        tinynn::evaluate_accuracy(&model, &data.test) * 100.0
    );

    // 2. The framework: PTQ + unpack + significance + DSE (Fig. 1 ①-④).
    let fw = Framework::analyze(
        &model,
        &data,
        AtamanConfig {
            eval_images: 256,
            tau_step: 0.01,
            max_configs: 200,
            ..Default::default()
        },
    );
    let dse = fw.dse_report();
    println!(
        "\nDSE explored {} approximate designs, {} on the Pareto front",
        dse.designs.len(),
        dse.pareto.len()
    );
    println!(
        "  int8 baseline accuracy: {:.1}%",
        dse.baseline_accuracy * 100.0
    );

    // 3. Baselines (exact engines).
    let board = Board::stm32u575();
    let cmsis = ataman::baseline_cmsis(fw.quant_model(), &data.test, &board);
    println!(
        "\nCMSIS-NN exact baseline : {:7.2} ms  {:5.2} mJ  {:4.0} KB flash  acc {:.1}%",
        cmsis.latency_ms,
        cmsis.energy_mj,
        cmsis.flash.total() as f64 / 1024.0,
        cmsis.accuracy * 100.0
    );

    // 4. Deploy at three accuracy-loss budgets (Fig. 1 ⑤, Table II).
    for loss in [0.0f32, 0.05, 0.10] {
        match fw.deploy_with_accuracy(loss, &data.test) {
            Ok(dep) => {
                let speedup = (1.0 - dep.latency_ms / cmsis.latency_ms) * 100.0;
                println!(
                    "ours ({:>3.0}% loss budget) : {:7.2} ms  {:5.2} mJ  {:4.0} KB flash  acc {:.1}%  ({:+.1}% latency)",
                    loss * 100.0,
                    dep.latency_ms,
                    dep.energy_mj,
                    dep.flash.total() as f64 / 1024.0,
                    dep.test_accuracy.unwrap() * 100.0,
                    -speedup
                );
            }
            Err(e) => println!("ours ({:>3.0}% loss budget) : {e}", loss * 100.0),
        }
    }

    // 5. A peek at the generated approximate C code.
    let dep = fw.deploy(0.05).expect("deployment");
    let preview: String = dep.c_code.lines().take(12).collect::<Vec<_>>().join("\n");
    println!("\ngenerated C (first lines):\n{preview}\n...");
}
