//! Per-operator cycle profiling across engines (Section II-A: "we extend
//! these kernels with cycle counters to profile parts of the C code for
//! individual operators").
//!
//! Prints a per-layer cycle breakdown of the exact CMSIS-style engine, then
//! compares total latency/flash/energy across CMSIS-NN, X-CUBE-AI and the
//! unpacked (exact and approximate) engines on the same model.
//!
//! ```sh
//! cargo run --release --example profile_kernels
//! ```

use ataman_repro::prelude::*;

fn main() {
    let mut cfg = DatasetConfig::paper_default();
    cfg.n_train = 1_500;
    cfg.n_test = 400;
    let data = generate(cfg);
    let mut model = zoo::lenet(3);
    println!("training {} ...", model.name);
    Trainer::new(SgdConfig {
        epochs: 4,
        ..Default::default()
    })
    .train(&mut model, &data.train);

    let ranges = calibrate_ranges(&model, &data.train.take(32));
    let q = quantize_model(&model, &ranges);
    let board = Board::stm32u575();
    let img = data.test.image(0);

    // --- per-operator profile of the exact engine -----------------------
    let cmsis = CmsisEngine::new(&q);
    println!("\nper-operator cycle counters (CMSIS-NN engine):");
    println!(
        "{:<22} {:>12} {:>10} {:>9}",
        "operator", "cycles", "MACs", "ms"
    );
    let mut total_cycles = 0u64;
    for p in cmsis.profile(img) {
        let cycles = p.stats.cycles(cmsis.cost_model());
        total_cycles += cycles;
        println!(
            "{:<22} {:>12} {:>10} {:>9.3}",
            p.label,
            cycles,
            p.stats.macs,
            board.cycles_to_ms(cycles)
        );
    }
    println!(
        "{:<22} {:>12} {:>10} {:>9.3}",
        "TOTAL",
        total_cycles,
        q.macs(),
        board.cycles_to_ms(total_cycles)
    );

    // --- event-class breakdown ------------------------------------------
    let (_, stats) = cmsis.infer(img);
    println!("\ninstruction-class breakdown:");
    for (event, count, cycles) in stats.breakdown(cmsis.cost_model()) {
        println!(
            "  {:<10} count {:>12}  cycles {:>12.0}",
            event.name(),
            count,
            cycles
        );
    }

    // --- engine comparison ------------------------------------------------
    let means = capture_mean_inputs(&q, &data.train.take(32));
    let sig = SignificanceMap::compute(&q, &means);
    let masks = sig.masks_for_tau(&q, &TauAssignment::global(0.02));

    let xcube = XCubeEngine::new(&q);
    let unpacked = UnpackedEngine::new(&q, None, UnpackOptions::default());
    let approx = UnpackedEngine::new(&q, Some(&masks), UnpackOptions::default());

    println!("\nengine comparison ({}):", q.name);
    println!(
        "{:<26} {:>9} {:>9} {:>10} {:>10}",
        "engine", "ms", "mJ", "MACs", "flash KB"
    );
    let rows = [
        (
            "CMSIS-NN (exact)",
            cmsis.infer(img).1,
            cmsisnn::flash_layout(&q).total(),
        ),
        (
            "X-CUBE-AI (simulated)",
            xcube.infer(img).1,
            xcube.flash_layout().total(),
        ),
        (
            "unpacked (exact)",
            unpacked.infer(img).1,
            unpackgen::unpacked_flash_layout(&q, unpacked.convs()).total(),
        ),
        (
            "unpacked+skip tau=0.02",
            approx.infer(img).1,
            unpackgen::unpacked_flash_layout(&q, approx.convs()).total(),
        ),
    ];
    for (name, stats, flash) in rows {
        let cost = CostModel::cortex_m33();
        println!(
            "{:<26} {:>9.2} {:>9.3} {:>10} {:>10.0}",
            name,
            stats.latency_ms(&cost, &board),
            stats.energy_mj(&cost, &board),
            stats.macs,
            flash as f64 / 1024.0
        );
    }
    println!(
        "\napprox accuracy {:.1}% vs exact {:.1}% on {} test images",
        q.accuracy(&data.test, Some(&masks)) * 100.0,
        q.accuracy(&data.test, None) * 100.0,
        data.test.len()
    );
}
