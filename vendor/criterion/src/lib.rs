//! Offline drop-in subset of `criterion` for this workspace.
//!
//! Benchmarks compile and run with the same source as against the real
//! crate; measurement is simplified to "warm up once, run a fixed number of
//! timed batches, report mean time per iteration" with no statistical
//! analysis or HTML reports. Good enough to compare kernel variants and to
//! track perf trends via the printed numbers.

use std::time::{Duration, Instant};

/// Benchmark context handed to registered benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Register one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into_bench_id(), 10, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed batches each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored in the stub (kept for source compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_bench_id(), self.sample_size, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.0,
            self.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Finish the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Benchmark identifier (name, optionally parameterized).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{parameter}", name.into()))
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Conversion of `&str`/`String`/`BenchmarkId` into a printable id.
pub trait IntoBenchId {
    /// The id string.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.0
    }
}

/// Per-benchmark timing driver passed to the closure.
pub struct Bencher {
    batches: usize,
    /// (total duration, total iterations) accumulated by `iter`.
    measured: (Duration, u64),
}

impl Bencher {
    /// Measure `f`, choosing an iteration count that keeps each batch short.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup + calibration: aim for batches of roughly 25 ms.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_batch =
            (Duration::from_millis(25).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(f());
            }
            total += start.elapsed();
            iters += per_batch;
        }
        self.measured = (total, iters);
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        batches: sample_size,
        measured: (Duration::ZERO, 0),
    };
    f(&mut b);
    let (total, iters) = b.measured;
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if iters == 0 {
        println!("   {label}: no measurement (closure never called iter)");
        return;
    }
    let per_iter = total.as_nanos() as f64 / iters as f64;
    println!("   {label}: {} per iter ({iters} iters)", fmt_ns(per_iter));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Re-export matching `criterion::black_box` (old call sites).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Build a named registration function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Build the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count_calls", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("a", 3).into_bench_id(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("p").into_bench_id(), "p");
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(2_500_000_000.0).contains('s'));
    }
}
