//! Offline drop-in subset of `rayon` for this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal parallel-iterator surface it actually uses:
//! `par_iter()` on slices, `into_par_iter()` on `Range<usize>`, `map`,
//! `map_init`, `sum`, `collect`, plus `ThreadPoolBuilder`/`install`.
//!
//! Semantics intentionally preserved from real rayon:
//!
//! * results are produced in **index order** (the workspace's determinism
//!   tests rely on order-stable `collect`);
//! * `map_init` creates one `init` value per worker chunk, never shared
//!   across threads;
//! * work actually runs on `std::thread` workers (one contiguous chunk per
//!   thread), so thread-count-independence bugs remain observable;
//! * nested parallel sections execute sequentially inside a worker — same
//!   results, bounded thread count.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Set inside worker threads so nested parallel sections degrade to
    /// sequential execution instead of exploding the thread count.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Global default parallelism (resolved once).
fn default_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    CACHED.store(n, Ordering::Relaxed);
    n
}

fn current_threads() -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    let installed = POOL_THREADS.with(|p| p.get());
    if installed > 0 {
        installed
    } else {
        default_threads()
    }
}

/// A source of independently computable items, indexable by position.
///
/// This is the whole internal representation: every combinator chain bottoms
/// out in "evaluate items `start..end` into `out`", which the driver farms
/// out to worker threads in contiguous chunks and concatenates in chunk
/// order — hence deterministic output order.
pub trait ParallelIterator: Sized + Sync {
    /// Item produced by this iterator.
    type Item: Send;

    /// Exact number of items.
    fn par_len(&self) -> usize;

    /// Evaluate items `start..end` in order, appending to `out`.
    fn eval_chunk(&self, start: usize, end: usize, out: &mut Vec<Self::Item>);

    /// Map each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Map with a per-chunk scratch value created by `init`.
    fn map_init<I, T, F, R>(self, init: I, f: F) -> MapInit<Self, I, F>
    where
        I: Fn() -> T + Sync,
        F: Fn(&mut T, Self::Item) -> R + Sync,
        R: Send,
    {
        MapInit {
            base: self,
            init,
            f,
        }
    }

    /// Sum all items (chunk partials are reduced in chunk order).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        drive(&self).into_iter().sum()
    }

    /// Collect into any `FromIterator` collection, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        drive(&self).into_iter().collect()
    }
}

/// Run a parallel iterator to completion, returning items in index order.
fn drive<P: ParallelIterator>(it: &P) -> Vec<P::Item> {
    let n = it.par_len();
    let threads = current_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        it.eval_chunk(0, n, &mut out);
        return out;
    }
    let chunk = n.div_ceil(threads);
    let mut parts: Vec<Vec<P::Item>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                break;
            }
            handles.push(s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                let mut out = Vec::with_capacity(end - start);
                it.eval_chunk(start, end, &mut out);
                out
            }));
        }
        for h in handles {
            parts.push(h.join().expect("rayon-stub worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

/// `map` adaptor.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, R> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn eval_chunk(&self, start: usize, end: usize, out: &mut Vec<R>) {
        let mut inner = Vec::with_capacity(end - start);
        self.base.eval_chunk(start, end, &mut inner);
        out.extend(inner.into_iter().map(&self.f));
    }
}

/// `map_init` adaptor: one scratch value per evaluated chunk.
pub struct MapInit<P, I, F> {
    base: P,
    init: I,
    f: F,
}

impl<P, I, T, F, R> ParallelIterator for MapInit<P, I, F>
where
    P: ParallelIterator,
    I: Fn() -> T + Sync,
    F: Fn(&mut T, P::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn eval_chunk(&self, start: usize, end: usize, out: &mut Vec<R>) {
        let mut inner = Vec::with_capacity(end - start);
        self.base.eval_chunk(start, end, &mut inner);
        let mut scratch = (self.init)();
        out.extend(inner.into_iter().map(|item| (self.f)(&mut scratch, item)));
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.end - self.start
    }

    fn eval_chunk(&self, start: usize, end: usize, out: &mut Vec<usize>) {
        out.extend(self.start + start..self.start + end);
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn eval_chunk(&self, start: usize, end: usize, out: &mut Vec<&'a T>) {
        out.extend(self.slice[start..end].iter());
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter {
            slice: self.as_slice(),
        }
    }
}

/// `par_iter()` by reference, as rayon's prelude provides.
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type (a reference).
    type Item: Send + 'data;
    /// Borrowing conversion.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoParallelIterator,
    C: 'data,
{
    type Iter = <&'data C as IntoParallelIterator>::Iter;
    type Item = <&'data C as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` threads (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Never fails in the stub; the `Result` mirrors rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type mirroring rayon's (the stub never produces it).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count override; `install` runs `op` with the pool's
/// parallelism visible to every parallel iterator it executes.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` under this pool's thread-count setting.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|p| p.replace(self.num_threads));
        let out = op();
        POOL_THREADS.with(|p| p.set(prev));
        out
    }

    /// The pool's configured parallelism.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        }
    }
}

/// Free-function mirror of `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    current_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn range_map_collect_is_index_ordered() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_sum() {
        let xs: Vec<usize> = (0..257).collect();
        let s: usize = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s, 257 * 256 / 2);
    }

    #[test]
    fn map_init_gets_fresh_scratch_per_chunk() {
        // The scratch must never be shared across items of different chunks
        // in a way that changes results: using it as a counter would be
        // nondeterministic in real rayon, but pure uses are fine.
        let v: Vec<usize> = (0..64usize)
            .into_par_iter()
            .map_init(Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                i
            })
            .collect();
        assert_eq!(v, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn pool_install_controls_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let a = pool.install(|| {
            (0..100usize)
                .into_par_iter()
                .map(|i| i * i)
                .collect::<Vec<_>>()
        });
        let pool4 = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let b = pool4.install(|| {
            (0..100usize)
                .into_par_iter()
                .map(|i| i * i)
                .collect::<Vec<_>>()
        });
        assert_eq!(a, b);
        assert_eq!(pool.current_num_threads(), 1);
        assert_eq!(pool4.current_num_threads(), 4);
    }

    #[test]
    fn nested_parallelism_is_sequential_but_correct() {
        let v: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                (0..8usize)
                    .into_par_iter()
                    .map(|j| i * 8 + j)
                    .sum::<usize>()
            })
            .collect();
        let want: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(v, want);
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<usize> = (5..5usize).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let xs: [u8; 0] = [];
        let s: usize = xs.par_iter().map(|_| 1usize).sum();
        assert_eq!(s, 0);
    }
}
