//! Offline drop-in subset of `serde_json` for this workspace.
//!
//! Renders and parses the vendored `serde` [`Value`] tree. The grammar is
//! standard JSON with two deliberate extensions required by this workspace:
//!
//! * non-finite floats: `±∞` is *written* as `1e999` / `-1e999` (valid JSON
//!   number syntax whose `f64` parse overflows back to `±∞`), and NaN as
//!   `null` (which numeric targets read back as NaN). The significance
//!   maps' `f64::INFINITY` retain-always sentinel round-trips through the
//!   trained-model caches because of this;
//! * the parser additionally accepts `Infinity`/`-Infinity`/`NaN` literals
//!   for robustness against hand-edited artifacts.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------- writer

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_compound(items.iter(), '[', ']', indent, depth, out, |item, d, o| {
                write_value(item, indent, d, o)
            })
        }
        Value::Map(entries) => write_compound(
            entries.iter(),
            '{',
            '}',
            indent,
            depth,
            out,
            |(k, item), d, o| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(item, indent, d, o);
            },
        ),
    }
}

fn write_compound<I, T>(
    items: I,
    open: char,
    close: char,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut write_item: impl FnMut(T, usize, &mut String),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(item, depth + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_float(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("null");
    } else if f == f64::INFINITY {
        out.push_str("1e999");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats distinguishable as floats.
        out.push_str(&format!("{f:.1}"));
    } else {
        // Rust's shortest-roundtrip Display.
        out.push_str(&f.to_string());
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'I') => {
                if self.eat_keyword("Infinity") {
                    Ok(Value::Float(f64::INFINITY))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'N') => {
                if self.eat_keyword("NaN") {
                    Ok(Value::Float(f64::NAN))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Accept `-Infinity` behind the sign.
        if self.eat_keyword("Infinity") {
            return Ok(Value::Float(f64::NEG_INFINITY));
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_roundtrip_exact() {
        for &x in &[0.0f64, -1.5, std::f64::consts::PI, 1e-300, 2.5e300, 72.125] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "via {s}");
        }
        for &x in &[0.1f32, -72.25, 1e-30, 3.4e38] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back, x, "via {s}");
        }
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "1e999");
        assert_eq!(from_str::<f64>("1e999").unwrap(), f64::INFINITY);
        assert_eq!(from_str::<f64>("-1e999").unwrap(), f64::NEG_INFINITY);
        assert_eq!(from_str::<f64>("Infinity").unwrap(), f64::INFINITY);
        assert_eq!(from_str::<f64>("-Infinity").unwrap(), f64::NEG_INFINITY);
        assert!(from_str::<f64>("null").unwrap().is_nan());
        let xs = vec![1.0f64, f64::INFINITY];
        let back: Vec<f64> = from_str(&to_string(&xs).unwrap()).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u8, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[],[3]]");
        let back: Vec<Vec<u8>> = from_str(&s).unwrap();
        assert_eq!(back, v);
        let o: Vec<Option<u32>> = vec![None, Some(5)];
        let back: Vec<Option<u32>> = from_str(&to_string(&o).unwrap()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn pretty_printing_shape() {
        let v = vec![1u8, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u8>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 trailing").is_err());
        assert!(from_str::<u32>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_strings() {
        let s = "héllo ⚙ \"q\" \\ \u{1}".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
