//! Offline drop-in subset of `proptest` for this workspace.
//!
//! Provides the surface the workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! range strategies (`0u64..5000`, `-128i32..=127`, `0.0f32..0.5`),
//! `prop::sample::select`, `any::<T>()` (via bare `name: Type` parameters),
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case panics with its inputs printed via the
//!   assert message, which is enough to reproduce (cases are seeded by a
//!   stable hash of the test name, so reruns are deterministic);
//! * `prop_assert*` are plain `assert*` (no rejection bookkeeping);
//! * the default case count is 64 (real proptest: 256) to keep the suite
//!   fast on the sequential substrate.

/// Execution configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic generator driving strategy sampling (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction; the `proptest!` macro derives the seed from the
    /// test's name so every test owns a stable stream.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x5DEE_CE66_D1CE_CAFE,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash used to derive per-test seeds from test names.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (0 S0, 1 S1),
    (0 S0, 1 S1, 2 S2),
    (0 S0, 1 S1, 2 S2, 3 S3)
);

/// Uniform choice among explicit options (`prop::sample::select`).
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select over empty options");
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}

/// A constant strategy (`Just`).
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Whole-type generation used by bare `name: Type` parameters.
pub trait Arbitrary: Sized {
    /// Generate a value covering the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy for an `Arbitrary` type, as `any::<T>()` returns.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Namespaced strategy constructors mirroring `proptest::prop`.
pub mod prop {
    /// Sampling strategies.
    pub mod sample {
        use crate::Select;

        /// Uniform choice among `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            Select { options }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy producing `Vec`s with element strategy `S`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + (rng.next_u64() % span) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Rejection macro: skip the current case when the precondition fails.
///
/// Stub limitation: expands to a bare `continue`, so it must be used at the
/// top level of the test body (not inside a user loop) — which is how every
/// test in this workspace uses it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assertion macro (plain `assert!` in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion macro.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion macro.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The main test macro: expands each `fn` into a `#[test]` that runs the
/// body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expand the test functions of a `proptest!` block.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $crate::__proptest_bind! { __rng, $($params)* }
                $body
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

/// Internal: bind `name in strategy` / `name: Type` parameters.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident,) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3usize..10).sample(&mut rng);
            assert!((3..10).contains(&v));
            let w = (-5i32..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (0.25f32..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn select_chooses_only_options() {
        let s = prop::sample::select(vec![1usize, 3, 5]);
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            assert!([1, 3, 5].contains(&s.sample(&mut rng)));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: mixed `in` and typed parameters.
        #[test]
        fn macro_binds_parameters(a in 0u64..100, b: u8, c in prop::sample::select(vec![2usize, 4])) {
            prop_assert!(a < 100);
            let _ = b;
            prop_assert!(c == 2 || c == 4);
            prop_assert_eq!(c % 2, 0);
            prop_assert_ne!(c, 3);
        }
    }
}
