//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde
//! subset.
//!
//! The build environment has no crates.io access, so this proc-macro avoids
//! `syn`/`quote` entirely: it walks the raw [`proc_macro::TokenTree`] stream
//! of the item with a small hand-rolled parser (attributes, visibility,
//! generics, named-struct fields, enum variants with optional payloads or
//! discriminants) and emits the trait impls as source strings.
//!
//! Supported shapes — exactly what the workspace derives on:
//!
//! * structs with named fields (possibly generic, e.g. `Tensor<T>`);
//! * enums of unit variants (with or without `= disc`) and tuple variants.
//!
//! Unsupported shapes (tuple/unit structs, struct variants, lifetimes,
//! const generics) produce a `compile_error!` naming the offender.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-tree `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize` (value-tree `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Enum: `(variant_name, payload_arity)` in declaration order.
    Enum(Vec<(String, usize)>),
}

struct Item {
    name: String,
    /// Type-parameter identifiers (e.g. `["T"]` for `Tensor<T>`).
    generics: Vec<String>,
    shape: Shape,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            i += 1;
            toks[i - 1].to_string()
        }
        other => {
            return Err(format!(
                "serde derive: expected struct/enum, found {other:?}"
            ))
        }
    };
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => {
            i += 1;
            id.to_string()
        }
        other => return Err(format!("serde derive: expected type name, found {other:?}")),
    };
    let generics = parse_generics(&toks, &mut i)?;

    // Skip anything up to the body (covers where-clauses, none expected).
    let body = loop {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde derive: tuple struct `{name}` is unsupported"
                ));
            }
            Some(_) => i += 1,
            None => return Err(format!("serde derive: `{name}` has no body")),
        }
    };

    let shape = if kind == "struct" {
        Shape::Struct(parse_struct_fields(body, &name)?)
    } else {
        Shape::Enum(parse_enum_variants(body, &name)?)
    };
    Ok(Item {
        name,
        generics,
        shape,
    })
}

/// Skip `#[...]` attribute groups (doc comments arrive in this form too).
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (toks.get(*i), toks.get(*i + 1))
    {
        if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
            *i += 2;
        } else {
            break;
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(super)`, ...
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parse `<T, U: Bound, ...>` returning the type-parameter names.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    match toks.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Ok(params),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    while depth > 0 {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                *i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth -= 1;
                *i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
                *i += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                return Err("serde derive: lifetimes are unsupported".to_string());
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "const" {
                    return Err("serde derive: const generics are unsupported".to_string());
                }
                if at_param_start && depth == 1 {
                    params.push(s);
                    at_param_start = false;
                }
                *i += 1;
            }
            Some(_) => *i += 1,
            None => return Err("serde derive: unterminated generics".to_string()),
        }
    }
    Ok(params)
}

/// Consume a type, stopping at a top-level `,` (which is consumed) or end.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_struct_fields(body: TokenStream, name: &str) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    loop {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_visibility(&toks, &mut i);
        let field = match toks.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            other => {
                return Err(format!("serde derive: bad field in `{name}`: {other:?}"));
            }
        };
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde derive: expected `:` after `{name}.{field}`, found {other:?}"
                ));
            }
        }
        skip_type(&toks, &mut i);
        fields.push(field);
    }
    Ok(fields)
}

fn parse_enum_variants(body: TokenStream, name: &str) -> Result<Vec<(String, usize)>, String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    loop {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let vname = match toks.get(i) {
            Some(TokenTree::Ident(id)) => {
                i += 1;
                id.to_string()
            }
            other => {
                return Err(format!("serde derive: bad variant in `{name}`: {other:?}"));
            }
        };
        let mut arity = 0usize;
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = tuple_arity(g.stream());
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde derive: struct variant `{name}::{vname}` is unsupported"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                i += 1;
                skip_type(&toks, &mut i); // skip discriminant up to `,`
                variants.push((vname, 0));
                continue;
            }
            _ => {}
        }
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            } else if p.as_char() == '=' {
                i += 1;
                skip_type(&toks, &mut i);
            }
        }
        variants.push((vname, arity));
    }
    Ok(variants)
}

/// Count top-level fields of a tuple-variant payload.
fn tuple_arity(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut angle = 0i32;
    let mut fields = 1usize;
    let mut trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                fields += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        fields -= 1;
    }
    fields
}

// ---------------------------------------------------------------- codegen

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", item.name)
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let plain = item.generics.join(", ");
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{plain}>",
            bounded.join(", "),
            item.name
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let header = impl_header(item, "Serialize");
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                ));
            }
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::with_capacity({});{pushes}::serde::Value::Map(__m)",
                fields.len()
            )
        }
        Shape::Enum(variants) => {
            let name = &item.name;
            let mut arms = String::new();
            for (v, arity) in variants {
                match arity {
                    0 => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_value(__f0))]),"
                    )),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![({v:?}.to_string(), \
                             ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all)] {header} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let header = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, {f:?})?)?,"
                ));
            }
            format!(
                "let __m = __v.as_map().ok_or_else(|| ::serde::DeError::custom(\
                 format!(\"expected map for `{name}`, got {{}}\", __v.kind())))?;\
                 ::std::result::Result::Ok(Self {{ {inits} }})"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (v, arity) in variants {
                match arity {
                    0 => unit_arms
                        .push_str(&format!("{v:?} => ::std::result::Result::Ok({name}::{v}),")),
                    1 => payload_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    n => {
                        let gets: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "{v:?} => {{ let __s = __inner.as_seq().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected sequence payload\"))?; \
                             if __s.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::custom(\"wrong payload arity\")); }} \
                             ::std::result::Result::Ok({name}::{v}({})) }},",
                            gets.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                   __other => ::std::result::Result::Err(::serde::DeError::custom(\
                   format!(\"unknown variant `{{__other}}` of `{name}`\"))), }}, \
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                   let (__k, __inner) = &__m[0]; \
                   match __k.as_str() {{ {payload_arms} \
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown variant `{{__other}}` of `{name}`\"))), }} }}, \
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"expected variant of `{name}`, got {{}}\", __other.kind()))), }}"
            )
        }
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all)] {header} {{ \
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}
