//! Offline drop-in subset of `serde` for this workspace.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal serialization framework under the `serde` name. Instead of the
//! real crate's visitor architecture, types convert to and from a concrete
//! JSON-shaped [`Value`] tree; the companion `serde_json` stub renders and
//! parses that tree. The `#[derive(Serialize, Deserialize)]` macros are
//! provided by the vendored `serde_derive` proc-macro and generate
//! `to_value`/`from_value` implementations.
//!
//! Encoding conventions (stable; trained-model caches depend on them):
//!
//! * structs → maps keyed by field name;
//! * unit enum variants → strings (`"Smlad"`);
//! * newtype enum variants → single-entry maps (`{"Conv": {...}}`);
//! * tuple enum variants of arity ≥ 2 → single-entry maps over a sequence;
//! * `Option` → `Null` or the inner value;
//! * non-finite floats → `Value::Float` with ±∞/NaN (rendered as `1e999`,
//!   `-1e999`, `null` by `serde_json` — all of which parse back losslessly,
//!   which the significance maps' `INFINITY` sentinel requires).

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral number (covers the full `u64`/`i64` ranges).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Field lookup helper used by derive-generated code.
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{key}`")))
}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Convert `self` to a dynamic value.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a dynamic value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        DeError::custom(format!(
                            "integer {} out of range for {}", i, stringify!($t)
                        ))
                    }),
                    other => Err(DeError::custom(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128);

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) => Ok(*i),
            other => Err(DeError::custom(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    // JSON writers emit integral floats without a dot.
                    Value::Int(i) => Ok(*i as $t),
                    // serde_json convention: non-finite floats may appear as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::custom(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::custom(format!(
                "expected char, got {}",
                other.kind()
            ))),
        }
    }
}

// ---- container impls ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of {N}, got {got}")))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| {
                    DeError::custom(format!("expected tuple sequence, got {}", v.kind()))
                })?;
                let want = [$($n),+].len();
                if s.len() != want {
                    return Err(DeError::custom(format!(
                        "expected tuple of {want}, got {}", s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )+};
}

impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i8::from_value(&(-7i8).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let f = f32::from_value(&1.5f32.to_value()).unwrap();
        assert_eq!(f, 1.5);
    }

    #[test]
    fn float_nonfinite_roundtrip() {
        let v = f64::INFINITY.to_value();
        assert_eq!(f64::from_value(&v).unwrap(), f64::INFINITY);
        let n = f64::from_value(&Value::Null).unwrap();
        assert!(n.is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        let xs = vec![Some(1u32), None, Some(3)];
        let back: Vec<Option<u32>> = Vec::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);
        let arr = [1u64, 2, 3];
        let back: [u64; 3] = <[u64; 3]>::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);
        let t = (1u8, -2.5f32);
        let back: (u8, f32) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn out_of_range_int_rejected() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn map_get_reports_missing_fields() {
        let m = vec![("a".to_string(), Value::Int(1))];
        assert!(map_get(&m, "a").is_ok());
        let err = map_get(&m, "b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
