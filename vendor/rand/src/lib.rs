//! Offline drop-in subset of `rand` 0.8 for this workspace.
//!
//! Only the API surface the workspace uses is provided: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open and
//! inclusive ranges of the primitive numeric types, [`Rng::gen`] for a few
//! primitives, and `seq::SliceRandom::shuffle`.
//!
//! `StdRng` here is **xoshiro256++** seeded via SplitMix64 — not the ChaCha
//! generator of the real crate, but every consumer in the workspace treats
//! `StdRng` as an opaque deterministic stream, and all baked-in expectations
//! (dataset bytes, trained-model caches) are regenerated inside this
//! workspace, so cross-crate bit-compatibility with upstream rand is not
//! required. Determinism: the same seed always produces the same stream on
//! every platform (no OS entropy anywhere).

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value API (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a value of a primitive type over its standard distribution
    /// (`[0,1)` for floats, full range for integers, fair coin for bool).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

/// Standard-distribution sampling used by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform f32 in `[0, 1)` with 24 bits of precision.
fn unit_f32<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable over a half-open or inclusive range (subset
/// of `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f32 {
    fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty f32 range");
        lo + (hi - lo) * unit_f32(rng)
    }

    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty f32 range");
        lo + (hi - lo) * unit_f32(rng)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty f64 range");
        lo + (hi - lo) * unit_f64(rng)
    }

    fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty integer range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                let off = rng.next_u64() % span;
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }

            fn sample_inclusive<R: Rng>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = rng.next_u64() % (span + 1);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T: SampleUniform> {
    /// Sample uniformly from `self`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Random generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence utilities (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y: f64 = rng.gen_range(0.5..3.5);
            assert!((0.5..3.5).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..=4);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "inclusive range failed to cover");
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn float_unit_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice in order"
        );
    }

    #[test]
    fn gen_standard_primitives() {
        let mut rng = StdRng::seed_from_u64(3);
        let f: f32 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let _: bool = rng.gen();
        let _: u64 = rng.gen();
    }
}
