//! # ataman-repro
//!
//! Workspace umbrella for the ATAMAN-rs reproduction of *"Accelerating
//! TinyML Inference on Microcontrollers through Approximate Kernels"*
//! (ICECS 2024). This crate only re-exports the member crates for the
//! examples and integration tests; the real functionality lives in
//! `crates/*` (see `DESIGN.md` for the system inventory).

pub use ataman;
pub use ataman_serve;
pub use cifar10sim;
pub use cmsisnn;
pub use dse;
pub use mcusim;
pub use quantize;
pub use signif;
pub use tinynn;
pub use tinytensor;
pub use unpackgen;
pub use xcubeai;

/// Commonly used items for examples.
pub mod prelude {
    pub use ataman::{AtamanConfig, BaselineReport, Deployment, Framework};
    pub use cifar10sim::{generate, DatasetConfig, SyntheticCifar};
    pub use cmsisnn::CmsisEngine;
    pub use mcusim::{Board, CostModel, ExecStats};
    pub use quantize::{calibrate_ranges, quantize_model, QuantModel, SkipMaskSet};
    pub use signif::{capture_mean_inputs, SignificanceMap, TauAssignment};
    pub use tinynn::{zoo, Sequential, SgdConfig, Trainer};
    pub use unpackgen::{UnpackOptions, UnpackedEngine};
    pub use xcubeai::XCubeEngine;
}
